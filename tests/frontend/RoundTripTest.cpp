//===- RoundTripTest.cpp - Printer/parser round-trip tests --------------------===//
//
// StencilProgram::str() renders the source dialect frontend::Parser
// accepts; feeding the rendering back through the parser must reproduce
// the program. This pins the two ends of the frontend together: any drift
// -- a construct the printer emits but the parser rejects (missing grid
// declarations, unbraced multi-statement time loops), or a semantic skew
// (the IR-vs-source time-index convention) -- fails here with the first
// diverging construct named.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "ir/StencilGallery.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace hextile;

namespace {

/// str() output with the "// ..." comments removed: statement-name
/// comments are presentation, not program, and the parser does not keep
/// them.
std::string canonicalSource(const ir::StencilProgram &P) {
  std::istringstream In(P.str());
  std::string Out, Line;
  while (std::getline(In, Line)) {
    size_t C = Line.find("//");
    if (C != std::string::npos)
      Line.erase(C);
    while (!Line.empty() && Line.back() == ' ')
      Line.pop_back();
    if (!Line.empty())
      Out += Line + "\n";
  }
  return Out;
}

/// Structural equivalence of the semantic content the parser must
/// preserve. Reads are compared through the canonical rendering (their
/// order in the read list may legally differ; their names, offsets and
/// expression structure may not).
void expectRoundTrips(const ir::StencilProgram &P) {
  frontend::ParseResult R = frontend::parseStencilProgram(P.str(), P.name());
  ASSERT_TRUE(R.ok()) << P.name() << ": " << R.Error << "\nsource:\n"
                      << P.str();
  const ir::StencilProgram &Q = R.Program;

  EXPECT_EQ(Q.spaceRank(), P.spaceRank());
  EXPECT_EQ(Q.spaceSizes(), P.spaceSizes());
  EXPECT_EQ(Q.timeSteps(), P.timeSteps());
  EXPECT_EQ(Q.numStmts(), P.numStmts());
  ASSERT_EQ(Q.fields().size(), P.fields().size());
  for (size_t F = 0; F < P.fields().size(); ++F) {
    EXPECT_EQ(Q.fields()[F].Name, P.fields()[F].Name);
    EXPECT_EQ(Q.fields()[F].Rank, P.fields()[F].Rank);
  }
  for (unsigned S = 0; S < P.numStmts(); ++S) {
    EXPECT_EQ(Q.stmts()[S].WriteField, P.stmts()[S].WriteField) << S;
    EXPECT_EQ(Q.stmts()[S].numReads(), P.stmts()[S].numReads()) << S;
    EXPECT_EQ(Q.stmts()[S].flops(), P.stmts()[S].flops()) << S;
  }
  for (unsigned D = 0; D < P.spaceRank(); ++D) {
    EXPECT_EQ(Q.loHalo(D), P.loHalo(D)) << D;
    EXPECT_EQ(Q.hiHalo(D), P.hiHalo(D)) << D;
  }
  EXPECT_EQ(Q.verify(), "");

  // Printer fixed point: re-rendering the re-parsed program reproduces the
  // rendering (modulo statement-name comments).
  EXPECT_EQ(canonicalSource(Q), canonicalSource(P)) << P.name();
}

} // namespace

TEST(RoundTripTest, Jacobi2D) { expectRoundTrips(ir::makeJacobi2D(16, 4)); }

TEST(RoundTripTest, Heat2D) { expectRoundTrips(ir::makeHeat2D(12, 3)); }

TEST(RoundTripTest, Gradient2D) {
  expectRoundTrips(ir::makeGradient2D(10, 2));
}

TEST(RoundTripTest, MultiStatementFdtd2D) {
  // Three statements with same-step reads (ex[t+1], ey[t+1] inside hz):
  // the braced time loop and the source time-index convention both matter.
  expectRoundTrips(ir::makeFdtd2D(12, 3));
}

TEST(RoundTripTest, Laplacian3D) {
  expectRoundTrips(ir::makeLaplacian3D(8, 2));
}

TEST(RoundTripTest, SkewedDepth2Reads) {
  // Reads two steps back (A[t-1] in source form): the deepest rotation in
  // the gallery.
  expectRoundTrips(ir::makeSkewedExample1D(32, 4));
}

TEST(RoundTripTest, Wave2DTwoTimeDepths) {
  // Second order in time: u[t] and u[t-1] source reads of one field in a
  // single statement.
  expectRoundTrips(ir::makeWave2D(12, 3));
}

TEST(RoundTripTest, VarHeat2DReadOnlyCoefficientField) {
  // K is declared and read but never written: the printer must still
  // declare the grid and the parser must accept a writer-less field.
  expectRoundTrips(ir::makeVarHeat2D(12, 3));
}

TEST(RoundTripTest, WholeGalleryParses) {
  // Weaker sweep over everything makeByName knows: rendering must at least
  // re-parse and re-verify, so new gallery entries cannot drift silently.
  for (const char *Name :
       {"jacobi1d", "jacobi2d", "laplacian2d", "heat2d", "gradient2d",
        "fdtd2d", "laplacian3d", "heat3d", "gradient3d", "skewed1d",
        "wave2d", "varheat2d", "heat2d4"}) {
    ir::StencilProgram P = ir::makeByName(Name);
    frontend::ParseResult R =
        frontend::parseStencilProgram(P.str(), P.name());
    EXPECT_TRUE(R.ok()) << Name << ": " << R.Error;
  }
}
