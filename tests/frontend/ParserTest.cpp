//===- ParserTest.cpp - Front-end parsing and lowering tests ------------------===//

#include "frontend/Parser.h"
#include "exec/Executor.h"
#include "ir/StencilGallery.h"

#include <gtest/gtest.h>

using namespace hextile;
using namespace hextile::frontend;

namespace {

const char *JacobiSrc = R"(
grid A[3072][3072];
for (t = 0; t < 512; t++) {
  for (i = 1; i < 3071; i++)
    for (j = 1; j < 3071; j++)
      A[t+1][i][j] = 0.2f * (A[t][i][j] + A[t][i][j+1] + A[t][i][j-1]
                             + A[t][i+1][j] + A[t][i-1][j]);
}
)";

const char *FdtdSrc = R"(
grid ey[512][512];
grid ex[512][512];
grid hz[512][512];
for (t = 0; t < 64; t++) {
  for (i = 1; i < 511; i++)
    for (j = 1; j < 511; j++)
      ey[t+1][i][j] = ey[t][i][j] - 0.5f * (hz[t][i][j] - hz[t][i-1][j]);
  for (i = 1; i < 511; i++)
    for (j = 1; j < 511; j++)
      ex[t+1][i][j] = ex[t][i][j] - 0.5f * (hz[t][i][j] - hz[t][i][j-1]);
  for (i = 1; i < 511; i++)
    for (j = 1; j < 511; j++)
      hz[t+1][i][j] = hz[t][i][j] - 0.7f * (ex[t+1][i][j+1] - ex[t+1][i][j]
                                   + ey[t+1][i+1][j] - ey[t+1][i][j]);
}
)";

} // namespace

TEST(ParserTest, ParsesJacobi2D) {
  ParseResult R = parseStencilProgram(JacobiSrc, "jacobi2d");
  ASSERT_TRUE(R.ok()) << R.Error;
  const ir::StencilProgram &P = R.Program;
  EXPECT_EQ(P.spaceRank(), 2u);
  EXPECT_EQ(P.timeSteps(), 512);
  EXPECT_EQ(P.spaceSizes()[0], 3072);
  EXPECT_EQ(P.numStmts(), 1u);
  EXPECT_EQ(P.totalReads(), 5u);
  EXPECT_EQ(P.totalFlops(), 5u);
  EXPECT_EQ(P.loHalo(0), 1);
  EXPECT_EQ(P.hiHalo(1), 1);
}

TEST(ParserTest, ParsedJacobiMatchesGallerySemantics) {
  ParseResult R = parseStencilProgram(JacobiSrc, "jacobi2d");
  ASSERT_TRUE(R.ok()) << R.Error;
  ir::StencilProgram Gallery = ir::makeJacobi2D(3072, 512);
  // Same reads (field, dt, offsets) up to ordering.
  ASSERT_EQ(R.Program.stmts()[0].Reads.size(),
            Gallery.stmts()[0].Reads.size());
  for (const ir::ReadAccess &A : R.Program.stmts()[0].Reads) {
    bool Found = false;
    for (const ir::ReadAccess &B : Gallery.stmts()[0].Reads)
      Found |= A.Field == B.Field && A.TimeOffset == B.TimeOffset &&
               A.Offsets == B.Offsets;
    EXPECT_TRUE(Found) << A.str(R.Program.fields());
  }
}

TEST(ParserTest, ParsesMultiStatementFdtd) {
  ParseResult R = parseStencilProgram(FdtdSrc, "fdtd2d");
  ASSERT_TRUE(R.ok()) << R.Error;
  const ir::StencilProgram &P = R.Program;
  ASSERT_EQ(P.numStmts(), 3u);
  EXPECT_EQ(P.stmts()[0].numReads(), 3u);
  EXPECT_EQ(P.stmts()[2].numReads(), 5u);
  // hz reads ex/ey of the same step (t+1 subscript -> TimeOffset 0).
  int SameStep = 0;
  for (const ir::ReadAccess &A : P.stmts()[2].Reads)
    if (A.TimeOffset == 0)
      ++SameStep;
  EXPECT_EQ(SameStep, 4);
}

TEST(ParserTest, IntrinsicCalls) {
  ParseResult R = parseStencilProgram(R"(
grid A[64];
for (t = 0; t < 4; t++)
  for (i = 1; i < 63; i++)
    A[t+1][i] = sqrtf(fabsf(A[t][i-1] - A[t][i+1]))
              + fminf(A[t][i], fmaxf(A[t][i-1], A[t][i+1]));
)");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Program.totalFlops(), 6u); // sqrt, abs, sub, min, max, add.
}

TEST(ParserTest, ErrorUnknownGrid) {
  ParseResult R = parseStencilProgram(R"(
grid A[64];
for (t = 0; t < 4; t++)
  for (i = 1; i < 63; i++)
    A[t+1][i] = B[t][i];
)");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("unknown grid 'B'"), std::string::npos);
}

TEST(ParserTest, ErrorFutureRead) {
  ParseResult R = parseStencilProgram(R"(
grid A[64];
for (t = 0; t < 4; t++)
  for (i = 1; i < 63; i++)
    A[t+1][i] = A[t+2][i];
)");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("future"), std::string::npos);
}

TEST(ParserTest, ErrorWrongIterator) {
  ParseResult R = parseStencilProgram(R"(
grid A[64][64];
for (t = 0; t < 4; t++)
  for (i = 1; i < 63; i++)
    for (j = 1; j < 63; j++)
      A[t+1][j][i] = A[t][i][j];
)");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("must use iterator"), std::string::npos);
}

TEST(ParserTest, ErrorRankMismatch) {
  ParseResult R = parseStencilProgram(R"(
grid A[64][64];
for (t = 0; t < 4; t++)
  for (i = 1; i < 63; i++)
    A[t+1][i][i] = A[t][i][i];
)");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("spatial loops"), std::string::npos);
}

TEST(ParserTest, ErrorWriteToCurrentStep) {
  ParseResult R = parseStencilProgram(R"(
grid A[64];
for (t = 0; t < 4; t++)
  for (i = 1; i < 63; i++)
    A[t][i] = A[t][i];
)");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("next time step"), std::string::npos);
}

TEST(ParserTest, ErrorUnknownFunction) {
  ParseResult R = parseStencilProgram(R"(
grid A[64];
for (t = 0; t < 4; t++)
  for (i = 1; i < 63; i++)
    A[t+1][i] = expf(A[t][i]);
)");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("unknown function"), std::string::npos);
}

TEST(ParserTest, ErrorMismatchedGridExtents) {
  ParseResult R = parseStencilProgram(R"(
grid A[64][64];
grid B[32][32];
for (t = 0; t < 4; t++)
  for (i = 1; i < 63; i++)
    for (j = 1; j < 63; j++)
      A[t+1][i][j] = B[t][i][j];
)");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("extents differ"), std::string::npos);
}

TEST(ParserTest, ParsedProgramExecutes) {
  // End-to-end: parse, then run the reference executor.
  ParseResult R = parseStencilProgram(R"(
grid A[16];
for (t = 0; t < 2; t++)
  for (i = 1; i < 15; i++)
    A[t+1][i] = 0.5f * (A[t][i-1] + A[t][i+1]);
)");
  ASSERT_TRUE(R.ok()) << R.Error;
  exec::GridStorage S(R.Program);
  exec::runReference(R.Program, S);
  SUCCEED();
}
