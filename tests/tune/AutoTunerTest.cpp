//===- AutoTunerTest.cpp - The measurement-driven tuning fleet ------------===//
//
// End-to-end semantics of the autotuner: a smoke tune of jacobi1d through
// a real CompileService whose winner replays bit-exact against the naive
// reference executor; the measured-winner >= analytic-pick guarantee; the
// cache-leverage claim (a second tune of the same program performs zero
// new compiles); the time-budget cutoff leaving a valid partial result;
// and the TuningTable JSON round trip (including rejection of malformed
// input). Measurement tests skip cleanly without a system compiler.
//
//===----------------------------------------------------------------------===//

#include "tune/AutoTuner.h"

#include "codegen/HybridCompiler.h"
#include "exec/FieldStorage.h"
#include "harness/HostKernelRunner.h"
#include "ir/StencilGallery.h"

#include <gtest/gtest.h>

using namespace hextile;
using namespace hextile::tune;

namespace {

/// A deliberately small sweep so the test tunes in seconds: six rank-1
/// geometries, two ladder rungs, hybrid flavor only, serial shim.
AutoTunerOptions smallSweep() {
  AutoTunerOptions Opts;
  Opts.Space.MaxH = 3;
  Opts.Space.W0Widths = {2, 3};
  Opts.Rungs = {'a', 'd'};
  Opts.Flavors = {codegen::EmitSchedule::Hybrid};
  Opts.ShimThreads = {0};
  Opts.Samples = 2;
  Opts.Warmups = 1;
  return Opts;
}

ir::StencilProgram smallJacobi1D() {
  ir::StencilProgram P = ir::makeJacobi1D(256, 32);
  return P;
}

TunedEntry sampleEntry() {
  TunedEntry E;
  E.Program = "heat2d";
  E.H = 2;
  E.W0 = 3;
  E.InnerWidths = {8, 32};
  E.Rung = 'c';
  E.Flavor = "classical";
  E.ShimThreads = 4;
  E.MeasuredGStencils = 1.25;
  E.AnalyticGStencils = 1.0;
  E.ModelLoadToCompute = 0.375;
  E.GapPct = 25.0;
  return E;
}

} // namespace

//===----------------------------------------------------------------------===//
// The fleet end-to-end.
//===----------------------------------------------------------------------===//

TEST(AutoTunerTest, SmokeTuneReplaysBitExactAndBeatsNothingAnalytic) {
  if (!service::JitUnit::available())
    GTEST_SKIP() << "no system C++ compiler; tuning measurements skip";

  service::CompileService Svc;
  AutoTuner Tuner(Svc, smallSweep());
  ir::StencilProgram P = smallJacobi1D();

  TuneResult R = Tuner.tune(P);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Program, "jacobi1d");
  EXPECT_GT(R.EnumeratedGeometries, 0u);
  EXPECT_GT(R.AdmissibleGeometries, 0u);
  EXPECT_GT(R.NewCompiles, 0u);

  // The analytic pick is candidate 0 and was measured.
  ASSERT_EQ(R.AnalyticIndex, 0);
  EXPECT_TRUE(R.Candidates[0].IsAnalyticPick);
  EXPECT_TRUE(R.Candidates[0].Measured);
  // More than one candidate was actually measured: this is a sweep, not
  // a single-point evaluation.
  size_t NumMeasured = 0;
  for (const TunedCandidate &C : R.Candidates)
    NumMeasured += C.Measured;
  EXPECT_GT(NumMeasured, 1u);

  // The headline invariant: the measured winner is at least as fast as
  // the analytic pick, because the analytic pick is itself a candidate.
  ASSERT_GE(R.WinnerIndex, 0);
  EXPECT_GE(R.Candidates[R.WinnerIndex].GStencilsPerSec,
            R.Candidates[0].GStencilsPerSec);
  EXPECT_GE(R.gapPct(), 0.0);

  // The winner replays bit-exact: re-request its exact key from the
  // service (a pure cache hit) and differential-test the entry point
  // against the naive reference executor.
  std::optional<TunedEntry> E = R.entry();
  ASSERT_TRUE(E.has_value());
  const TunedCandidate &W = R.Candidates[R.WinnerIndex];
  service::CompileRequest WinnerReq;
  WinnerReq.Program = P;
  WinnerReq.Tiling.H = W.Geometry.H;
  WinnerReq.Tiling.W0 = W.Geometry.W0;
  WinnerReq.Tiling.InnerWidths = W.Geometry.InnerWidths;
  WinnerReq.Config = E->tunedSizes().Config;
  WinnerReq.Flavor = W.Flavor;
  service::CompileResult Replay = Svc.compile(WinnerReq);
  ASSERT_TRUE(Replay.ok()) << Replay.Error;
  EXPECT_EQ(Replay.Stats.How, service::RequestOutcome::MemoryHit);
  EXPECT_EQ(harness::runEntryDifferential(P, Replay.Artifact->entry(),
                                          exec::defaultInit,
                                          "tuned winner " + W.str()),
            "");

  // The "use tuned sizes" compiler path realizes the winner's geometry.
  codegen::CompiledHybrid Tuned =
      codegen::compileHybridTuned(P, E->tunedSizes());
  EXPECT_EQ(Tuned.schedule().params().H, W.Geometry.H);
  EXPECT_EQ(Tuned.schedule().params().W0, W.Geometry.W0);
  EXPECT_EQ(Tuned.config().ShimThreads, W.ShimThreads);
}

TEST(AutoTunerTest, SecondTunePerformsZeroNewCompiles) {
  if (!service::JitUnit::available())
    GTEST_SKIP() << "no system C++ compiler; tuning measurements skip";

  service::CompileService Svc;
  AutoTuner Tuner(Svc, smallSweep());
  ir::StencilProgram P = smallJacobi1D();

  TuneResult First = Tuner.tune(P);
  ASSERT_TRUE(First.ok()) << First.Error;
  EXPECT_GT(First.NewCompiles, 0u);

  // The fleet's cache leverage: every candidate key is resident, so the
  // re-tune is measurement-only.
  TuneResult Second = Tuner.tune(P);
  ASSERT_TRUE(Second.ok()) << Second.Error;
  EXPECT_EQ(Second.NewCompiles, 0u);
  for (const TunedCandidate &C : Second.Candidates)
    if (C.Measured)
      EXPECT_EQ(C.How, service::RequestOutcome::MemoryHit)
          << C.str();
  // Same candidate space, same winner geometry scoring story.
  EXPECT_EQ(Second.Candidates.size(), First.Candidates.size());
}

TEST(AutoTunerTest, TimeBudgetCutoffLeavesValidPartialResult) {
  if (!service::JitUnit::available())
    GTEST_SKIP() << "no system C++ compiler; tuning measurements skip";

  service::CompileService Svc;
  AutoTunerOptions Opts = smallSweep();
  // The compile fleet alone exceeds this, so every candidate after the
  // analytic pick is skipped.
  Opts.TimeBudgetMs = 0.001;
  AutoTuner Tuner(Svc, Opts);
  TuneResult R = Tuner.tune(smallJacobi1D());

  // Still a valid result: the analytic pick was measured before the
  // budget was consulted, and it is the winner by default.
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(R.BudgetExhausted);
  EXPECT_EQ(R.WinnerIndex, 0);
  EXPECT_TRUE(R.Candidates[0].Measured);
  size_t Skipped = 0;
  for (const TunedCandidate &C : R.Candidates)
    Skipped += C.SkippedByBudget;
  EXPECT_GT(Skipped, 0u);
  EXPECT_EQ(R.gapPct(), 0.0);
  std::optional<TunedEntry> E = R.entry();
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->GapPct, 0.0);
}

//===----------------------------------------------------------------------===//
// The durable table.
//===----------------------------------------------------------------------===//

TEST(AutoTunerTest, TuningTableJsonRoundTrips) {
  TuningTable Table("gtx470");
  Table.put(sampleEntry());
  TunedEntry Second;
  Second.Program = "jacobi1d";
  Second.H = 3;
  Second.W0 = 4;
  Second.Rung = 'a';
  Second.Flavor = "hex";
  Second.MeasuredGStencils = 0.5;
  Table.put(Second);

  std::string Json = Table.toJson();
  std::string Err;
  std::optional<TuningTable> Back = TuningTable::fromJson(Json, &Err);
  ASSERT_TRUE(Back.has_value()) << Err;
  EXPECT_EQ(Back->device(), "gtx470");
  ASSERT_EQ(Back->size(), 2u);
  ASSERT_NE(Back->lookup("heat2d"), nullptr);
  EXPECT_TRUE(*Back->lookup("heat2d") == sampleEntry());
  ASSERT_NE(Back->lookup("jacobi1d"), nullptr);
  EXPECT_TRUE(*Back->lookup("jacobi1d") == Second);
  EXPECT_EQ(Back->lookup("nosuch"), nullptr);

  // put() replaces by program name instead of duplicating rows.
  TunedEntry Updated = sampleEntry();
  Updated.MeasuredGStencils = 9.0;
  Back->put(Updated);
  EXPECT_EQ(Back->size(), 2u);
  EXPECT_EQ(Back->lookup("heat2d")->MeasuredGStencils, 9.0);
}

TEST(AutoTunerTest, TuningTableRejectsMalformedJson) {
  std::string Err;
  EXPECT_FALSE(TuningTable::fromJson("{", &Err).has_value());
  EXPECT_FALSE(Err.empty());
  EXPECT_FALSE(TuningTable::fromJson("42", &Err).has_value());
  // Structurally valid JSON but no entries array.
  EXPECT_FALSE(
      TuningTable::fromJson("{\"device\": \"x\"}", &Err).has_value());
  EXPECT_NE(Err.find("entries"), std::string::npos);
  // An entry without a program name.
  EXPECT_FALSE(TuningTable::fromJson(
                   "{\"entries\": [{\"h\": 1, \"w0\": 2}]}", &Err)
                   .has_value());
  // A bad rung letter.
  EXPECT_FALSE(
      TuningTable::fromJson("{\"entries\": [{\"program\": \"p\", "
                            "\"h\": 1, \"w0\": 2, \"rung\": \"z\"}]}",
                            &Err)
          .has_value());
}

TEST(AutoTunerTest, TunedSizesRealizeRungAndShim) {
  TunedEntry E = sampleEntry();
  E.Rung = 'a';
  codegen::TunedSizes T = E.tunedSizes();
  EXPECT_EQ(T.H, E.H);
  EXPECT_EQ(T.W0, E.W0);
  EXPECT_EQ(T.InnerWidths, E.InnerWidths);
  EXPECT_FALSE(T.Config.UseSharedMemory); // rung (a)
  EXPECT_EQ(T.Config.ShimThreads, 4);

  for (codegen::EmitSchedule S :
       {codegen::EmitSchedule::Hex, codegen::EmitSchedule::Hybrid,
        codegen::EmitSchedule::Classical})
    EXPECT_EQ(emitScheduleByName(codegen::emitScheduleName(S)), S);
  EXPECT_FALSE(emitScheduleByName("cuda").has_value());
}
