//===- DeviceConfigTest.cpp - Device preset tests ------------------------------===//

#include "gpu/DeviceConfig.h"

#include <gtest/gtest.h>

using namespace hextile;
using namespace hextile::gpu;

TEST(DeviceConfigTest, Gtx470MatchesBoardSpecs) {
  DeviceConfig D = DeviceConfig::gtx470();
  EXPECT_EQ(D.NumSMs * D.CoresPerSM, 448); // 448 CUDA cores.
  EXPECT_NEAR(D.ClockGHz, 1.215, 1e-9);
  EXPECT_NEAR(D.DramBandwidthGBs, 133.9, 1e-9);
  EXPECT_EQ(D.SharedMemPerBlock, 48 << 10);
  EXPECT_EQ(D.L2Bytes, 640 << 10);
}

TEST(DeviceConfigTest, Nvs5200MatchesBoardSpecs) {
  DeviceConfig D = DeviceConfig::nvs5200();
  EXPECT_EQ(D.NumSMs * D.CoresPerSM, 96); // 96 CUDA cores.
  EXPECT_NEAR(D.DramBandwidthGBs, 14.4, 1e-9);
}

TEST(DeviceConfigTest, PeakRatesScaleWithSpecs) {
  DeviceConfig Big = DeviceConfig::gtx470();
  DeviceConfig Small = DeviceConfig::nvs5200();
  EXPECT_GT(Big.peakGFlops(), 4 * Small.peakGFlops());
  EXPECT_GT(Big.peakSharedWordsPerSec(), Small.peakSharedWordsPerSec());
  // GTX 470: 448 * 1.215 = 544 GFLOP/s at 1 FLOP/core/cycle.
  EXPECT_NEAR(Big.peakGFlops(), 544.3, 0.5);
}

TEST(DeviceConfigTest, FermiMemoryGeometry) {
  DeviceConfig D = DeviceConfig::gtx470();
  EXPECT_EQ(D.WarpSize, 32);
  EXPECT_EQ(D.SharedBanks, 32);
  EXPECT_EQ(D.CacheLineBytes, 128);
  EXPECT_EQ(D.SectorBytes, 32);
  EXPECT_EQ(D.CacheLineBytes % D.SectorBytes, 0);
}
