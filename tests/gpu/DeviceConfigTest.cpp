//===- DeviceConfigTest.cpp - Device preset tests ------------------------------===//

#include "gpu/DeviceConfig.h"
#include "gpu/DeviceTopology.h"

#include <gtest/gtest.h>

using namespace hextile;
using namespace hextile::gpu;

TEST(DeviceConfigTest, Gtx470MatchesBoardSpecs) {
  DeviceConfig D = DeviceConfig::gtx470();
  EXPECT_EQ(D.NumSMs * D.CoresPerSM, 448); // 448 CUDA cores.
  EXPECT_NEAR(D.ClockGHz, 1.215, 1e-9);
  EXPECT_NEAR(D.DramBandwidthGBs, 133.9, 1e-9);
  EXPECT_EQ(D.SharedMemPerBlock, 48 << 10);
  EXPECT_EQ(D.L2Bytes, 640 << 10);
}

TEST(DeviceConfigTest, Nvs5200MatchesBoardSpecs) {
  DeviceConfig D = DeviceConfig::nvs5200();
  EXPECT_EQ(D.NumSMs * D.CoresPerSM, 96); // 96 CUDA cores.
  EXPECT_NEAR(D.DramBandwidthGBs, 14.4, 1e-9);
}

TEST(DeviceConfigTest, PeakRatesScaleWithSpecs) {
  DeviceConfig Big = DeviceConfig::gtx470();
  DeviceConfig Small = DeviceConfig::nvs5200();
  EXPECT_GT(Big.peakGFlops(), 4 * Small.peakGFlops());
  EXPECT_GT(Big.peakSharedWordsPerSec(), Small.peakSharedWordsPerSec());
  // GTX 470: 448 * 1.215 = 544 GFLOP/s at 1 FLOP/core/cycle.
  EXPECT_NEAR(Big.peakGFlops(), 544.3, 0.5);
}

TEST(DeviceConfigTest, FermiMemoryGeometry) {
  DeviceConfig D = DeviceConfig::gtx470();
  EXPECT_EQ(D.WarpSize, 32);
  EXPECT_EQ(D.SharedBanks, 32);
  EXPECT_EQ(D.CacheLineBytes, 128);
  EXPECT_EQ(D.SectorBytes, 32);
  EXPECT_EQ(D.CacheLineBytes % D.SectorBytes, 0);
}

// --- DeviceTopology: the simulated multi-device substrate -------------------

TEST(DeviceTopologyTest, UniformSplitIsBalancedAndContiguous) {
  DeviceTopology T = DeviceTopology::uniform(DeviceConfig::gtx470(), 4);
  ASSERT_EQ(T.numDevices(), 4u);
  std::vector<SlabRange> S = T.planSlabs(64, 1);
  ASSERT_EQ(S.size(), 4u);
  EXPECT_EQ(S.front().Lo, 0);
  EXPECT_EQ(S.back().Hi, 64);
  for (size_t I = 0; I < S.size(); ++I) {
    EXPECT_EQ(S[I].width(), 16);
    if (I)
      EXPECT_EQ(S[I].Lo, S[I - 1].Hi); // No gaps, no overlap.
  }
}

TEST(DeviceTopologyTest, HeterogeneousSplitFollowsSmCounts) {
  DeviceTopology T;
  T.Devices = {DeviceConfig::gtx470(), DeviceConfig::nvs5200()};
  std::vector<SlabRange> S = T.planSlabs(32, 1);
  ASSERT_EQ(S.size(), 2u);
  // 14 vs 2 SMs: 32 * 14/16 = 28 against 4.
  EXPECT_EQ(S[0].width(), 28);
  EXPECT_EQ(S[1].width(), 4);
}

TEST(DeviceTopologyTest, MinWidthFloorBindsSkewedSplits) {
  DeviceTopology T;
  T.Devices = {DeviceConfig::gtx470(), DeviceConfig::nvs5200()};
  // Proportional split would give the small device 1 cell; the floor of 3
  // must push the boundary down while keeping the cover exact.
  std::vector<SlabRange> S = T.planSlabs(10, 3);
  ASSERT_EQ(S.size(), 2u);
  EXPECT_EQ(S[0].Hi, S[1].Lo);
  EXPECT_EQ(S[1].Hi, 10);
  EXPECT_GE(S[0].width(), 3);
  EXPECT_GE(S[1].width(), 3);
}

TEST(DeviceTopologyTest, NarrowExtentFallsBackToDevicePrefix) {
  DeviceTopology T = DeviceTopology::uniform(DeviceConfig::nvs5200(), 6);
  EXPECT_EQ(T.planSlabs(5, 2).size(), 2u);  // floor(5/2).
  EXPECT_EQ(T.planSlabs(1, 2).size(), 1u);  // Single device, no floor.
  EXPECT_EQ(T.planSlabs(100, 2).size(), 6u);
}

TEST(DeviceTopologyTest, DescriptionRunLengthEncodes) {
  DeviceTopology T = DeviceTopology::uniform(DeviceConfig::gtx470(), 2);
  T.Devices.push_back(DeviceConfig::nvs5200());
  std::string S = T.str();
  EXPECT_NE(S.find("2 x"), std::string::npos) << S;
  EXPECT_NE(S.find("1 x"), std::string::npos) << S;
}

TEST(DeviceTopologyTest, EmptyTopologyDegeneratesToOneSlab) {
  DeviceTopology Empty;
  std::vector<SlabRange> S = Empty.planSlabs(20, 3);
  ASSERT_EQ(S.size(), 1u);
  EXPECT_EQ(S[0].Lo, 0);
  EXPECT_EQ(S[0].Hi, 20);
}
