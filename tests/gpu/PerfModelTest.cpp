//===- PerfModelTest.cpp - Performance model tests ----------------------------===//

#include "gpu/PerfModel.h"

#include <gtest/gtest.h>

using namespace hextile;
using namespace hextile::gpu;

namespace {

KernelModel baseKernel() {
  KernelModel K;
  K.Name = "k";
  K.Launches = 10;
  K.BlocksPerLaunch = 64;
  K.SlabsPerBlock = 4;
  K.UpdatesPerSlab = 1000;
  K.FlopsPerSlab = 6000;
  RowBatch B;
  B.Count = 10;
  B.Len = 32;
  B.AlignElems = 0;
  K.LoadRequestRows = {B};
  K.StoreRows = {B};
  K.SharedLoadsPerSlab = 3000;
  K.SharedStoresPerSlab = 1000;
  return K;
}

} // namespace

TEST(PerfModelTest, BasicInvariants) {
  DeviceConfig Dev = DeviceConfig::gtx470();
  PerfResult R = simulate(Dev, {baseKernel()});
  EXPECT_GT(R.Seconds, 0.0);
  EXPECT_GT(R.GStencilsPerSec, 0.0);
  EXPECT_EQ(R.TotalUpdates, 10 * 64 * 4 * 1000);
  EXPECT_DOUBLE_EQ(R.Counters.GldEfficiency, 1.0);
  EXPECT_DOUBLE_EQ(R.Counters.SharedLoadsPerRequest, 1.0);
}

TEST(PerfModelTest, SlowerDeviceIsSlower) {
  PerfResult Big = simulate(DeviceConfig::gtx470(), {baseKernel()});
  PerfResult Small = simulate(DeviceConfig::nvs5200(), {baseKernel()});
  EXPECT_GT(Big.GStencilsPerSec, Small.GStencilsPerSec);
}

TEST(PerfModelTest, NonOverlappedCopyIsSlower) {
  KernelModel K = baseKernel();
  // Make memory traffic significant.
  K.LoadRequestRows[0].Count = 2000;
  PerfResult Overlap = simulate(DeviceConfig::gtx470(), {K});
  K.OverlapCopyOut = false;
  PerfResult Serial = simulate(DeviceConfig::gtx470(), {K});
  EXPECT_LT(Overlap.Seconds, Serial.Seconds);
}

TEST(PerfModelTest, BankConflictsSlowSharedBoundKernels) {
  KernelModel K = baseKernel();
  K.SharedLoadsPerSlab = 200000; // Shared-memory bound.
  PerfResult Clean = simulate(DeviceConfig::gtx470(), {K});
  K.SharedTransactionsPerRequest = 2.0;
  PerfResult Conflicted = simulate(DeviceConfig::gtx470(), {K});
  EXPECT_LT(Conflicted.GStencilsPerSec, Clean.GStencilsPerSec);
  EXPECT_DOUBLE_EQ(Conflicted.Counters.SharedLoadsPerRequest, 2.0);
}

TEST(PerfModelTest, MisalignmentRaisesDramTraffic) {
  KernelModel K = baseKernel();
  PerfResult Aligned = simulate(DeviceConfig::gtx470(), {K});
  K.LoadRequestRows[0].AlignElems = 31;
  PerfResult Misaligned = simulate(DeviceConfig::gtx470(), {K});
  EXPECT_GT(Misaligned.Counters.DramReadTransactions,
            Aligned.Counters.DramReadTransactions);
  EXPECT_LT(Misaligned.Counters.GldEfficiency,
            Aligned.Counters.GldEfficiency);
}

TEST(PerfModelTest, DistinctRowsDriveDram) {
  KernelModel K = baseKernel();
  // Request 10x the distinct traffic (cached re-reads).
  RowBatch Req = K.LoadRequestRows[0];
  Req.Count *= 10;
  K.LoadRequestRows = {Req};
  RowBatch Distinct = Req;
  Distinct.Count /= 10;
  K.LoadDistinctRows = {Distinct};
  PerfResult R = simulate(DeviceConfig::gtx470(), {K});
  // DRAM follows distinct lines; gld inst follows requests.
  double SlabsTotal = 10.0 * 64 * 4;
  EXPECT_DOUBLE_EQ(R.Counters.DramReadTransactions,
                   SlabsTotal * Distinct.Count * 4);
  EXPECT_DOUBLE_EQ(R.Counters.GldInst32bit, SlabsTotal * Req.Count * 32);
}

TEST(PerfModelTest, LaunchOverheadDominatesTinyKernels) {
  KernelModel K = baseKernel();
  K.Launches = 10000;
  K.BlocksPerLaunch = 1;
  K.SlabsPerBlock = 1;
  K.UpdatesPerSlab = 10;
  K.FlopsPerSlab = 60;
  K.LoadRequestRows.clear();
  K.StoreRows.clear();
  K.SharedLoadsPerSlab = 30;
  K.SharedStoresPerSlab = 10;
  DeviceConfig Dev = DeviceConfig::gtx470();
  PerfResult R = simulate(Dev, {K});
  EXPECT_GE(R.Seconds, 10000 * Dev.LaunchOverheadUs * 1e-6);
}

TEST(PerfModelTest, FewBlocksUnderutilizeSMs) {
  KernelModel K = baseKernel();
  K.BlocksPerLaunch = 1;
  K.Launches = 1;
  K.SlabsPerBlock = 256;
  PerfResult One = simulate(DeviceConfig::gtx470(), {K});
  K.BlocksPerLaunch = 64;
  K.SlabsPerBlock = 4;
  PerfResult Many = simulate(DeviceConfig::gtx470(), {K});
  // Same total work, but one block cannot fill 14 SMs.
  EXPECT_GT(One.Seconds, Many.Seconds);
}
