//===- PerfModelTest.cpp - Performance model tests ----------------------------===//

#include "gpu/PerfModel.h"

#include "exec/DeviceSimBackend.h"
#include "exec/Executor.h"
#include "exec/PartitionedGridStorage.h"
#include "harness/StencilOracle.h"
#include "ir/StencilGallery.h"

#include <gtest/gtest.h>

using namespace hextile;
using namespace hextile::gpu;

namespace {

KernelModel baseKernel() {
  KernelModel K;
  K.Name = "k";
  K.Launches = 10;
  K.BlocksPerLaunch = 64;
  K.SlabsPerBlock = 4;
  K.UpdatesPerSlab = 1000;
  K.FlopsPerSlab = 6000;
  RowBatch B;
  B.Count = 10;
  B.Len = 32;
  B.AlignElems = 0;
  K.LoadRequestRows = {B};
  K.StoreRows = {B};
  K.SharedLoadsPerSlab = 3000;
  K.SharedStoresPerSlab = 1000;
  return K;
}

} // namespace

TEST(PerfModelTest, BasicInvariants) {
  DeviceConfig Dev = DeviceConfig::gtx470();
  PerfResult R = simulate(Dev, {baseKernel()});
  EXPECT_GT(R.Seconds, 0.0);
  EXPECT_GT(R.GStencilsPerSec, 0.0);
  EXPECT_EQ(R.TotalUpdates, 10 * 64 * 4 * 1000);
  EXPECT_DOUBLE_EQ(R.Counters.GldEfficiency, 1.0);
  EXPECT_DOUBLE_EQ(R.Counters.SharedLoadsPerRequest, 1.0);
}

TEST(PerfModelTest, SlowerDeviceIsSlower) {
  PerfResult Big = simulate(DeviceConfig::gtx470(), {baseKernel()});
  PerfResult Small = simulate(DeviceConfig::nvs5200(), {baseKernel()});
  EXPECT_GT(Big.GStencilsPerSec, Small.GStencilsPerSec);
}

TEST(PerfModelTest, NonOverlappedCopyIsSlower) {
  KernelModel K = baseKernel();
  // Make memory traffic significant.
  K.LoadRequestRows[0].Count = 2000;
  PerfResult Overlap = simulate(DeviceConfig::gtx470(), {K});
  K.OverlapCopyOut = false;
  PerfResult Serial = simulate(DeviceConfig::gtx470(), {K});
  EXPECT_LT(Overlap.Seconds, Serial.Seconds);
}

TEST(PerfModelTest, BankConflictsSlowSharedBoundKernels) {
  KernelModel K = baseKernel();
  K.SharedLoadsPerSlab = 200000; // Shared-memory bound.
  PerfResult Clean = simulate(DeviceConfig::gtx470(), {K});
  K.SharedTransactionsPerRequest = 2.0;
  PerfResult Conflicted = simulate(DeviceConfig::gtx470(), {K});
  EXPECT_LT(Conflicted.GStencilsPerSec, Clean.GStencilsPerSec);
  EXPECT_DOUBLE_EQ(Conflicted.Counters.SharedLoadsPerRequest, 2.0);
}

TEST(PerfModelTest, MisalignmentRaisesDramTraffic) {
  KernelModel K = baseKernel();
  PerfResult Aligned = simulate(DeviceConfig::gtx470(), {K});
  K.LoadRequestRows[0].AlignElems = 31;
  PerfResult Misaligned = simulate(DeviceConfig::gtx470(), {K});
  EXPECT_GT(Misaligned.Counters.DramReadTransactions,
            Aligned.Counters.DramReadTransactions);
  EXPECT_LT(Misaligned.Counters.GldEfficiency,
            Aligned.Counters.GldEfficiency);
}

TEST(PerfModelTest, DistinctRowsDriveDram) {
  KernelModel K = baseKernel();
  // Request 10x the distinct traffic (cached re-reads).
  RowBatch Req = K.LoadRequestRows[0];
  Req.Count *= 10;
  K.LoadRequestRows = {Req};
  RowBatch Distinct = Req;
  Distinct.Count /= 10;
  K.LoadDistinctRows = {Distinct};
  PerfResult R = simulate(DeviceConfig::gtx470(), {K});
  // DRAM follows distinct lines; gld inst follows requests.
  double SlabsTotal = 10.0 * 64 * 4;
  EXPECT_DOUBLE_EQ(R.Counters.DramReadTransactions,
                   SlabsTotal * Distinct.Count * 4);
  EXPECT_DOUBLE_EQ(R.Counters.GldInst32bit, SlabsTotal * Req.Count * 32);
}

TEST(PerfModelTest, LaunchOverheadDominatesTinyKernels) {
  KernelModel K = baseKernel();
  K.Launches = 10000;
  K.BlocksPerLaunch = 1;
  K.SlabsPerBlock = 1;
  K.UpdatesPerSlab = 10;
  K.FlopsPerSlab = 60;
  K.LoadRequestRows.clear();
  K.StoreRows.clear();
  K.SharedLoadsPerSlab = 30;
  K.SharedStoresPerSlab = 10;
  DeviceConfig Dev = DeviceConfig::gtx470();
  PerfResult R = simulate(Dev, {K});
  EXPECT_GE(R.Seconds, 10000 * Dev.LaunchOverheadUs * 1e-6);
}

TEST(PerfModelTest, FewBlocksUnderutilizeSMs) {
  KernelModel K = baseKernel();
  K.BlocksPerLaunch = 1;
  K.Launches = 1;
  K.SlabsPerBlock = 256;
  PerfResult One = simulate(DeviceConfig::gtx470(), {K});
  K.BlocksPerLaunch = 64;
  K.SlabsPerBlock = 4;
  PerfResult Many = simulate(DeviceConfig::gtx470(), {K});
  // Same total work, but one block cannot fill 14 SMs.
  EXPECT_GT(One.Seconds, Many.Seconds);
}

TEST(HaloExchangeCostTest, NarrowGridsAreLatencyDominated) {
  // jacobi1d has a one-point inner extent: each exchange round moves a
  // handful of bytes, so the alpha term (rounds * latency) towers over the
  // beta term at any realistic round count.
  ir::StencilProgram P = ir::makeJacobi1D(64, 40);
  DeviceTopology Topo = DeviceTopology::uniform(
      DeviceConfig::gtx470(), 2, LinkSpec{10.0, 1.0});
  std::vector<int64_t> Cuts = {32};
  HaloExchangeCost Cost = predictHaloExchangeCost(P, Topo, Cuts,
                                                  /*ExchangeRounds=*/437);
  ASSERT_EQ(Cost.PerLinkValues.size(), 1u);
  EXPECT_GT(Cost.PerLinkValues[0], 0);
  EXPECT_GT(Cost.LatencySeconds, 10.0 * Cost.TransferSeconds);
  EXPECT_NEAR(Cost.Seconds, Cost.LatencySeconds + Cost.TransferSeconds,
              1e-12 * Cost.Seconds);
}

TEST(HaloExchangeCostTest, WideGridsAreBandwidthDominated) {
  // Same link, same per-round latency -- but a wide 2D grid moves whole
  // boundary rows per round, so bytes over bandwidth dominates.
  ir::StencilProgram P = ir::makeJacobi2D(20000, 40);
  DeviceTopology Topo = DeviceTopology::uniform(
      DeviceConfig::gtx470(), 2, LinkSpec{10.0, 1.0});
  std::vector<int64_t> Cuts = {10000};
  HaloExchangeCost Cost =
      predictHaloExchangeCost(P, Topo, Cuts, /*ExchangeRounds=*/40);
  EXPECT_GT(Cost.TransferSeconds, 10.0 * Cost.LatencySeconds);
}

TEST(HaloExchangeCostTest, AsymmetricLinksPriceEqualTrafficDifferently) {
  // Symmetric cuts of a uniform grid carry identical byte counts, so with
  // per-edge link specs the *cost* split is exactly the link asymmetry --
  // total bytes alone could never see it.
  ir::StencilProgram P = ir::makeJacobi2D(30, 6);
  DeviceTopology Topo =
      DeviceTopology::uniform(DeviceConfig::gtx470(), 3);
  Topo.Links = {LinkSpec{1.0, 32.0},   // NVLink-ish edge 0.
                LinkSpec{25.0, 2.0}};  // Narrow PCIe switch on edge 1.
  std::vector<int64_t> Cuts = {10, 20};
  HaloExchangeCost Cost = predictHaloExchangeCost(P, Topo, Cuts, 6);
  ASSERT_EQ(Cost.PerLinkSeconds.size(), 2u);
  EXPECT_EQ(Cost.PerLinkValues[0], Cost.PerLinkValues[1]);
  EXPECT_GT(Cost.PerLinkSeconds[1], 10.0 * Cost.PerLinkSeconds[0]);
}

TEST(HaloExchangeCostTest, PredictionEqualsMeasuredReplayCostExactly) {
  // The cross-check the shared closed form exists for: replay classical
  // tiling on a heterogeneous chain, feed the *measured* exchange cadence
  // into the analytic model, and the per-link simulated costs must agree
  // to the last bit -- classical byte counts match the analytic strip
  // model exactly, and both sides price traffic through the identical
  // LinkSpec::seconds call in the same accumulation order.
  ir::StencilProgram P = ir::makeJacobi2D(32, 6);
  gpu::DeviceTopology Topo =
      DeviceTopology::uniform(DeviceConfig::gtx470(), 3);
  Topo.Links = {LinkSpec{3.0, 24.0}, LinkSpec{40.0, 0.5}};

  harness::OracleSchedule S = harness::makeOracleSchedule(
      P, harness::ScheduleKind::Classical, harness::OracleTiling{});
  ASSERT_NE(S.Key, nullptr);
  exec::DeviceSimBackend Backend(Topo, /*Threaded=*/true);
  Backend.setMinTaskInstances(1);
  exec::ScheduleRunOptions Opts;
  Opts.BackendOverride = &Backend;
  Opts.ParallelFrom = S.ParallelFrom;
  exec::ReplayStats Stats;
  Opts.Stats = &Stats;
  std::unique_ptr<exec::FieldStorage> Storage = exec::makeStorage(P, Opts);
  auto *Parts = dynamic_cast<exec::PartitionedGridStorage *>(Storage.get());
  ASSERT_NE(Parts, nullptr);
  std::vector<int64_t> Cuts;
  for (unsigned D = 1; D < Parts->numDevices(); ++D)
    Cuts.push_back(Parts->owned(D).Lo);

  core::IterationDomain Domain = core::IterationDomain::forProgram(P);
  exec::runSchedule(P, *Storage, Domain, S.Key, Opts);
  ASSERT_EQ(Stats.PerLink.size(), Cuts.size());
  ASSERT_GT(Stats.HaloExchanges, 0u);

  HaloExchangeCost Predicted = predictHaloExchangeCost(
      P, Topo, Cuts, static_cast<int64_t>(Stats.HaloExchanges));
  for (size_t E = 0; E < Cuts.size(); ++E) {
    EXPECT_EQ(static_cast<size_t>(Predicted.PerLinkValues[E]),
              Stats.PerLink[E].Values)
        << "link " << E;
    EXPECT_DOUBLE_EQ(Predicted.PerLinkSeconds[E],
                     Stats.PerLink[E].SimulatedSeconds)
        << "link " << E;
  }
  EXPECT_DOUBLE_EQ(Predicted.Seconds, Stats.HaloSimulatedSeconds);
}
