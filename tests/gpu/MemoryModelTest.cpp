//===- MemoryModelTest.cpp - Coalescing and bank model tests -----------------===//

#include "gpu/MemoryModel.h"

#include <gtest/gtest.h>

using namespace hextile;
using namespace hextile::gpu;

namespace {
DeviceConfig dev() { return DeviceConfig::gtx470(); }
} // namespace

TEST(MemoryModelTest, AlignedFullWarpRow) {
  // 32 elements at offset 0: one 128B line, 4 sectors, 100% efficiency.
  TrafficStats S = analyzeRow(dev(), 32, 0);
  EXPECT_EQ(S.ThreadInsts, 32);
  EXPECT_EQ(S.WarpInsts, 1);
  EXPECT_EQ(S.Lines, 1);
  EXPECT_EQ(S.Sectors, 4);
  EXPECT_DOUBLE_EQ(S.efficiency(), 1.0);
}

TEST(MemoryModelTest, MisalignedWarpRowTouchesTwoLines) {
  // 32 elements at offset 31 (the "-1 halo" case): 2 lines, 50% efficiency.
  TrafficStats S = analyzeRow(dev(), 32, 31);
  EXPECT_EQ(S.WarpInsts, 1);
  EXPECT_EQ(S.Lines, 2);
  EXPECT_DOUBLE_EQ(S.efficiency(), 0.5);
  EXPECT_EQ(S.Sectors, 5); // 4B at the end of one sector + 4 more sectors.
}

TEST(MemoryModelTest, HaloRowWithTail) {
  // 34 elements at offset 0 (aligned tile + 2-wide halo tail): the second
  // warp load moves 2 elements but touches a whole line.
  TrafficStats S = analyzeRow(dev(), 34, 0);
  EXPECT_EQ(S.WarpInsts, 2);
  EXPECT_EQ(S.Lines, 2);
  EXPECT_EQ(S.UsefulBytes, 136);
  EXPECT_DOUBLE_EQ(S.efficiency(), 136.0 / 256.0);
}

TEST(MemoryModelTest, HaloRowMisaligned) {
  // 34 elements at offset 31 (natural "-1" start): three lines touched.
  TrafficStats S = analyzeRow(dev(), 34, 31);
  EXPECT_EQ(S.Lines, 3);
  EXPECT_NEAR(S.efficiency(), 136.0 / 384.0, 1e-9);
}

TEST(MemoryModelTest, EmptyRow) {
  TrafficStats S = analyzeRow(dev(), 0, 5);
  EXPECT_EQ(S.WarpInsts, 0);
  EXPECT_EQ(S.Lines, 0);
  EXPECT_DOUBLE_EQ(S.efficiency(), 1.0);
}

TEST(MemoryModelTest, BatchesScaleByCount) {
  RowBatch B;
  B.Count = 10;
  B.Len = 32;
  B.AlignElems = 0;
  TrafficStats S = analyzeBatches(dev(), std::vector<RowBatch>{B});
  EXPECT_EQ(S.Lines, 10);
  EXPECT_EQ(S.ThreadInsts, 320);
}

TEST(MemoryModelTest, BankConflictsUnitStride) {
  EXPECT_DOUBLE_EQ(stridedBankTransactions(dev(), 1), 1.0);
}

TEST(MemoryModelTest, BankConflictsEvenStrides) {
  EXPECT_DOUBLE_EQ(stridedBankTransactions(dev(), 2), 2.0);
  EXPECT_DOUBLE_EQ(stridedBankTransactions(dev(), 4), 4.0);
  EXPECT_DOUBLE_EQ(stridedBankTransactions(dev(), 32), 32.0);
  // Odd strides are conflict-free on 32 banks.
  EXPECT_DOUBLE_EQ(stridedBankTransactions(dev(), 33), 1.0);
  EXPECT_DOUBLE_EQ(stridedBankTransactions(dev(), 3), 1.0);
}

TEST(MemoryModelTest, BroadcastIsFree) {
  std::vector<int64_t> Same(32, 7);
  EXPECT_DOUBLE_EQ(bankTransactionsPerRequest(dev(), Same), 1.0);
}
