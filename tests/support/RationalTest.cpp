//===- RationalTest.cpp - Exact rational arithmetic tests ------------------===//

#include "support/Rational.h"

#include <gtest/gtest.h>

using namespace hextile;

TEST(RationalTest, NormalizesSignAndGcd) {
  Rational R(4, -6);
  EXPECT_EQ(R.num(), -2);
  EXPECT_EQ(R.den(), 3);
  EXPECT_TRUE(R.isNegative());
  EXPECT_EQ(Rational(0, 5), Rational(0));
  EXPECT_EQ(Rational(-10, -5), Rational(2));
}

TEST(RationalTest, Arithmetic) {
  Rational A(1, 2), B(1, 3);
  EXPECT_EQ(A + B, Rational(5, 6));
  EXPECT_EQ(A - B, Rational(1, 6));
  EXPECT_EQ(A * B, Rational(1, 6));
  EXPECT_EQ(A / B, Rational(3, 2));
  EXPECT_EQ(-A, Rational(-1, 2));
}

TEST(RationalTest, CompoundAssignment) {
  Rational A(1, 4);
  A += Rational(1, 4);
  EXPECT_EQ(A, Rational(1, 2));
  A *= Rational(4);
  EXPECT_EQ(A, Rational(2));
  A -= Rational(1, 2);
  EXPECT_EQ(A, Rational(3, 2));
  A /= Rational(3);
  EXPECT_EQ(A, Rational(1, 2));
}

TEST(RationalTest, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_GE(Rational(7), Rational(13, 2));
  EXPECT_NE(Rational(1, 3), Rational(1, 2));
}

TEST(RationalTest, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(6, 2).floor(), 3);
  EXPECT_EQ(Rational(6, 2).ceil(), 3);
}

TEST(RationalTest, FractionalPart) {
  // {x} = x - floor(x), as used by the width bound, eq. (1).
  EXPECT_EQ(Rational(7, 2).fract(), Rational(1, 2));
  EXPECT_EQ(Rational(-7, 2).fract(), Rational(1, 2));
  EXPECT_EQ(Rational(5).fract(), Rational(0));
  EXPECT_EQ(Rational(-5, 3).fract(), Rational(1, 3));
}

TEST(RationalTest, MinMax) {
  EXPECT_EQ(Rational::min(Rational(1, 2), Rational(1, 3)), Rational(1, 3));
  EXPECT_EQ(Rational::max(Rational(1, 2), Rational(1, 3)), Rational(1, 2));
}

TEST(RationalTest, Str) {
  EXPECT_EQ(Rational(3).str(), "3");
  EXPECT_EQ(Rational(-3, 2).str(), "-3/2");
}

TEST(RationalTest, CrossReductionAvoidsOverflow) {
  // (2^40 / 3) * (3 / 2^40) must not overflow intermediates.
  Rational Big(int64_t(1) << 40, 3);
  Rational Inv(3, int64_t(1) << 40);
  EXPECT_EQ(Big * Inv, Rational(1));
}

TEST(RationalTest, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 2).toDouble(), 0.5);
  EXPECT_DOUBLE_EQ(Rational(-5, 4).toDouble(), -1.25);
}

//===----------------------------------------------------------------------===//
// Edge cases: negative denominators, INT64 extremes, zero-denominator
// rejection.
//===----------------------------------------------------------------------===//

TEST(RationalEdgeTest, NegativeDenominatorNormalization) {
  EXPECT_EQ(Rational(3, -6), Rational(-1, 2));
  EXPECT_EQ(Rational(-3, -6), Rational(1, 2));
  EXPECT_GT(Rational(3, -6).den(), 0);
  EXPECT_EQ(Rational(0, -5), Rational(0));
  EXPECT_EQ(Rational(7, -1).floor(), -7);
  EXPECT_EQ(Rational(-7, -2).ceil(), 4);
  EXPECT_LT(Rational(1, -2), Rational(0));
}

TEST(RationalEdgeTest, Int64Extremes) {
  EXPECT_EQ(Rational(INT64_MAX, 1).num(), INT64_MAX);
  EXPECT_EQ(Rational(INT64_MIN).floor(), INT64_MIN);
  EXPECT_EQ(Rational(INT64_MAX).ceil(), INT64_MAX);
  // Reduction keeps extreme values exact.
  EXPECT_EQ(Rational(INT64_MAX, INT64_MAX), Rational(1));
  EXPECT_EQ(Rational(INT64_MIN / 2, INT64_MIN / 2), Rational(1));
  // Comparisons near the extremes go through 128-bit cross products.
  EXPECT_LT(Rational(INT64_MAX - 1), Rational(INT64_MAX));
  EXPECT_LT(Rational(INT64_MIN + 1, INT64_MAX), Rational(0));
  EXPECT_LE(Rational(INT64_MAX), Rational(INT64_MAX));
}

TEST(RationalEdgeDeathTest, ZeroDenominatorRejected) {
  EXPECT_DEATH_IF_SUPPORTED(Rational(1, 0), "zero denominator");
  EXPECT_DEATH_IF_SUPPORTED(Rational(0, 0), "zero denominator");
}

TEST(RationalEdgeDeathTest, DivisionByZeroRejected) {
  EXPECT_DEATH_IF_SUPPORTED(Rational(1, 2) / Rational(0),
                            "division by zero");
}
