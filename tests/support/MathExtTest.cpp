//===- MathExtTest.cpp - Integer helper tests ------------------------------===//

#include "support/MathExt.h"

#include <gtest/gtest.h>

using namespace hextile;

TEST(MathExtTest, FloorDivMatchesMath) {
  EXPECT_EQ(floorDiv(7, 2), 3);
  EXPECT_EQ(floorDiv(-7, 2), -4);
  EXPECT_EQ(floorDiv(7, -2), -4);
  EXPECT_EQ(floorDiv(-7, -2), 3);
  EXPECT_EQ(floorDiv(6, 3), 2);
  EXPECT_EQ(floorDiv(-6, 3), -2);
}

TEST(MathExtTest, CeilDivMatchesMath) {
  EXPECT_EQ(ceilDiv(7, 2), 4);
  EXPECT_EQ(ceilDiv(-7, 2), -3);
  EXPECT_EQ(ceilDiv(7, -2), -3);
  EXPECT_EQ(ceilDiv(-7, -2), 4);
  EXPECT_EQ(ceilDiv(6, 3), 2);
}

TEST(MathExtTest, EuclidModAlwaysNonNegative) {
  EXPECT_EQ(euclidMod(7, 3), 1);
  EXPECT_EQ(euclidMod(-7, 3), 2);
  EXPECT_EQ(euclidMod(-6, 3), 0);
  EXPECT_EQ(euclidMod(7, -3), 1);
}

/// Property sweep: q*D + r == N with 0 <= r < |D| for every combination.
TEST(MathExtTest, FloorDivModIdentityProperty) {
  for (int64_t N = -50; N <= 50; ++N)
    for (int64_t D : {1, 2, 3, 7, -1, -3}) {
      int64_t Q = floorDiv(N, D);
      int64_t R = euclidMod(N, D);
      if (D > 0) {
        EXPECT_EQ(Q * D + R, N) << N << " / " << D;
      }
      EXPECT_GE(R, 0);
      EXPECT_LT(R, D > 0 ? D : -D);
      EXPECT_GE(ceilDiv(N, D), Q);
    }
}

TEST(MathExtTest, Gcd) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(-12, 18), 6);
  EXPECT_EQ(gcd64(0, 7), 7);
  EXPECT_EQ(gcd64(0, 0), 0);
  EXPECT_EQ(gcd64(13, 7), 1);
}

TEST(MathExtTest, Lcm) {
  EXPECT_EQ(lcm64(4, 6), 12);
  EXPECT_EQ(lcm64(3, 7), 21);
  EXPECT_EQ(lcm64(0, 7), 0);
  EXPECT_EQ(lcm64(-4, 6), 12);
}

TEST(MathExtTest, CheckedOpsPassThrough) {
  EXPECT_EQ(mulChecked(1 << 20, 1 << 20), int64_t(1) << 40);
  EXPECT_EQ(addChecked(INT64_MAX - 1, 1), INT64_MAX);
}

//===----------------------------------------------------------------------===//
// Edge cases: negative divisors, INT64 extremes, zero-divisor rejection.
//===----------------------------------------------------------------------===//

TEST(MathExtEdgeTest, NegativeDivisorsAcrossHelpers) {
  // floor/ceil identities must hold for every sign combination:
  // floorDiv(n, d) == -ceilDiv(-n, d) == -ceilDiv(n, -d).
  for (int64_t N : {-9, -7, -1, 0, 1, 7, 9})
    for (int64_t D : {-4, -3, -2, -1, 1, 2, 3, 4}) {
      EXPECT_EQ(floorDiv(N, D), -ceilDiv(-N, D)) << N << "/" << D;
      EXPECT_EQ(floorDiv(N, D), -ceilDiv(N, -D)) << N << "/" << D;
      // Quotient-remainder law coupling floorDiv with euclidMod:
      // for D > 0, N == floorDiv(N, D) * D + euclidMod(N, D).
      if (D > 0)
        EXPECT_EQ(floorDiv(N, D) * D + euclidMod(N, D), N)
            << N << "/" << D;
      int64_t M = euclidMod(N, D);
      EXPECT_GE(M, 0) << N << " mod " << D;
      EXPECT_LT(M, D < 0 ? -D : D) << N << " mod " << D;
    }
}

TEST(MathExtEdgeTest, Int64Extremes) {
  EXPECT_EQ(floorDiv(INT64_MIN, 1), INT64_MIN);
  EXPECT_EQ(floorDiv(INT64_MAX, 1), INT64_MAX);
  EXPECT_EQ(floorDiv(INT64_MIN, 2), INT64_MIN / 2);
  EXPECT_EQ(floorDiv(INT64_MIN + 1, -1), INT64_MAX);
  EXPECT_EQ(ceilDiv(INT64_MAX, 2), INT64_MAX / 2 + 1);
  EXPECT_EQ(euclidMod(INT64_MIN, 2), 0);
  EXPECT_EQ(euclidMod(INT64_MIN, 3), 1); // -2^63 = 3*q + 1.
  EXPECT_EQ(euclidMod(INT64_MAX, INT64_MAX), 0);
  EXPECT_EQ(gcd64(INT64_MAX, 0), INT64_MAX);
  EXPECT_EQ(gcd64(0, 0), 0);
  EXPECT_EQ(addChecked(INT64_MAX, 0), INT64_MAX);
  EXPECT_EQ(addChecked(INT64_MIN, 0), INT64_MIN);
  EXPECT_EQ(mulChecked(INT64_MAX, 1), INT64_MAX);
  EXPECT_EQ(mulChecked(INT64_MIN, 1), INT64_MIN);
  EXPECT_EQ(mulChecked(INT64_MAX, -1), -INT64_MAX);
}

TEST(MathExtEdgeDeathTest, ZeroDivisorsRejected) {
  EXPECT_DEATH_IF_SUPPORTED(floorDiv(7, 0), "floorDiv by zero");
  EXPECT_DEATH_IF_SUPPORTED(ceilDiv(7, 0), "ceilDiv by zero");
  EXPECT_DEATH_IF_SUPPORTED(euclidMod(7, 0), "euclidMod by zero");
}

TEST(MathExtEdgeDeathTest, CheckedArithmeticRejectsOverflow) {
  EXPECT_DEATH_IF_SUPPORTED(addChecked(INT64_MAX, 1), "add overflow");
  EXPECT_DEATH_IF_SUPPORTED(addChecked(INT64_MIN, -1), "add overflow");
  EXPECT_DEATH_IF_SUPPORTED(mulChecked(INT64_MAX, 2), "multiply overflow");
  EXPECT_DEATH_IF_SUPPORTED(mulChecked(INT64_MIN, -1), "multiply overflow");
  EXPECT_DEATH_IF_SUPPORTED(lcm64(INT64_MAX, INT64_MAX - 1),
                            "multiply overflow");
}
