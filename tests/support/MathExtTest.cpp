//===- MathExtTest.cpp - Integer helper tests ------------------------------===//

#include "support/MathExt.h"

#include <gtest/gtest.h>

using namespace hextile;

TEST(MathExtTest, FloorDivMatchesMath) {
  EXPECT_EQ(floorDiv(7, 2), 3);
  EXPECT_EQ(floorDiv(-7, 2), -4);
  EXPECT_EQ(floorDiv(7, -2), -4);
  EXPECT_EQ(floorDiv(-7, -2), 3);
  EXPECT_EQ(floorDiv(6, 3), 2);
  EXPECT_EQ(floorDiv(-6, 3), -2);
}

TEST(MathExtTest, CeilDivMatchesMath) {
  EXPECT_EQ(ceilDiv(7, 2), 4);
  EXPECT_EQ(ceilDiv(-7, 2), -3);
  EXPECT_EQ(ceilDiv(7, -2), -3);
  EXPECT_EQ(ceilDiv(-7, -2), 4);
  EXPECT_EQ(ceilDiv(6, 3), 2);
}

TEST(MathExtTest, EuclidModAlwaysNonNegative) {
  EXPECT_EQ(euclidMod(7, 3), 1);
  EXPECT_EQ(euclidMod(-7, 3), 2);
  EXPECT_EQ(euclidMod(-6, 3), 0);
  EXPECT_EQ(euclidMod(7, -3), 1);
}

/// Property sweep: q*D + r == N with 0 <= r < |D| for every combination.
TEST(MathExtTest, FloorDivModIdentityProperty) {
  for (int64_t N = -50; N <= 50; ++N)
    for (int64_t D : {1, 2, 3, 7, -1, -3}) {
      int64_t Q = floorDiv(N, D);
      int64_t R = euclidMod(N, D);
      if (D > 0) {
        EXPECT_EQ(Q * D + R, N) << N << " / " << D;
      }
      EXPECT_GE(R, 0);
      EXPECT_LT(R, D > 0 ? D : -D);
      EXPECT_GE(ceilDiv(N, D), Q);
    }
}

TEST(MathExtTest, Gcd) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(-12, 18), 6);
  EXPECT_EQ(gcd64(0, 7), 7);
  EXPECT_EQ(gcd64(0, 0), 0);
  EXPECT_EQ(gcd64(13, 7), 1);
}

TEST(MathExtTest, Lcm) {
  EXPECT_EQ(lcm64(4, 6), 12);
  EXPECT_EQ(lcm64(3, 7), 21);
  EXPECT_EQ(lcm64(0, 7), 0);
  EXPECT_EQ(lcm64(-4, 6), 12);
}

TEST(MathExtTest, CheckedOpsPassThrough) {
  EXPECT_EQ(mulChecked(1 << 20, 1 << 20), int64_t(1) << 40);
  EXPECT_EQ(addChecked(INT64_MAX - 1, 1), INT64_MAX);
}
