//===- HybridCompilerTest.cpp - Compiler driver tests -------------------------===//

#include "codegen/CudaEmitter.h"
#include "codegen/HybridCompiler.h"
#include "ir/StencilGallery.h"

#include <gtest/gtest.h>

#include <map>

using namespace hextile;
using namespace hextile::codegen;

namespace {

TileSizeRequest sizes(int64_t H, int64_t W0, std::vector<int64_t> Inner) {
  TileSizeRequest R;
  R.H = H;
  R.W0 = W0;
  R.InnerWidths = std::move(Inner);
  return R;
}

} // namespace

TEST(HybridCompilerTest, CompilesWithExplicitSizes) {
  CompiledHybrid C =
      compileHybrid(ir::makeJacobi2D(256, 32), sizes(2, 3, {32}));
  EXPECT_EQ(C.schedule().params().H, 2);
  EXPECT_EQ(C.schedule().params().W0, 3);
  EXPECT_EQ(C.threadsPerBlock(), 32);
  EXPECT_GT(C.slabCosts().Instances, 0);
}

TEST(HybridCompilerTest, KernelModelStructure) {
  CompiledHybrid C =
      compileHybrid(ir::makeJacobi2D(256, 32), sizes(2, 3, {32}));
  gpu::DeviceConfig Dev = gpu::DeviceConfig::gtx470();
  std::vector<gpu::KernelModel> Ks = C.kernelModels(Dev);
  ASSERT_EQ(Ks.size(), 1u);
  const gpu::KernelModel &K = Ks[0];
  EXPECT_EQ(K.Launches, core::launches(C.program(), C.schedule()));
  EXPECT_EQ(K.BlocksPerLaunch,
            core::blocksPerLaunch(C.program(), C.schedule()));
  EXPECT_GT(K.SharedBytesPerBlock, 0);
  EXPECT_FALSE(K.LoadRequestRows.empty());
  EXPECT_FALSE(K.StoreRows.empty());
}

TEST(HybridCompilerTest, OptimizationLadderOrdering) {
  // On the large GPU the ladder of Sec. 6.2 must be broadly monotone:
  // (a) <= (b) <= (c) <= (d) and (f) the best of all.
  ir::StencilProgram P = ir::makeHeat3D(384, 128);
  gpu::DeviceConfig Dev = gpu::DeviceConfig::gtx470();
  std::map<char, double> GF;
  for (char L : {'a', 'b', 'c', 'd', 'e', 'f'}) {
    CompiledHybrid C = compileHybrid(P, sizes(2, 7, {10, 32}),
                                     OptimizationConfig::level(L));
    GF[L] = gpu::simulate(Dev, C.kernelModels(Dev)).GFlops;
  }
  EXPECT_LT(GF['a'], GF['c']);
  EXPECT_LT(GF['b'], GF['c']);
  EXPECT_LE(GF['c'], GF['d'] * 1.05);
  EXPECT_LE(GF['e'], GF['f']);
  // The roofline hides latency perfectly once copy-out is interleaved, so
  // the (d) -> (f) step is smaller than the paper's +50% (see
  // EXPERIMENTS.md); it must at least not regress materially.
  EXPECT_GE(GF['f'], 0.95 * GF['d']);
  EXPECT_GE(GF['f'], 1.2 * GF['b']);
}

TEST(HybridCompilerTest, CounterShapesMatchTable5) {
  ir::StencilProgram P = ir::makeHeat3D(384, 128);
  gpu::DeviceConfig Dev = gpu::DeviceConfig::gtx470();
  auto Counters = [&](char L) {
    CompiledHybrid C = compileHybrid(P, sizes(2, 7, {10, 32}),
                                     OptimizationConfig::level(L));
    return gpu::simulate(Dev, C.kernelModels(Dev)).Counters;
  };
  gpu::PerfCounters A = Counters('a'), B = Counters('b'),
                    D = Counters('d'), F = Counters('f');
  // Shared memory cuts global load instructions by an order of magnitude
  // (Table 5: 171e9 -> 8.7e9, a factor of ~20).
  EXPECT_GT(A.GldInst32bit / B.GldInst32bit, 10.0);
  // Alignment improves gld efficiency; reuse reaches 100%.
  EXPECT_LT(B.GldEfficiency, 0.45);
  EXPECT_GT(D.GldEfficiency, B.GldEfficiency);
  EXPECT_DOUBLE_EQ(F.GldEfficiency, 1.0);
  // L2 transactions collapse once shared memory filters re-reads.
  EXPECT_GT(A.L2ReadTransactions / B.L2ReadTransactions, 4.0);
  // Static reuse pays bank conflicts.
  EXPECT_GT(Counters('e').SharedLoadsPerRequest, 1.5);
  EXPECT_DOUBLE_EQ(F.SharedLoadsPerRequest, 1.0);
}

TEST(HybridCompilerTest, AutomaticTileSelection) {
  TileSizeRequest R;
  R.Constraints.MaxH = 3;
  R.Constraints.W0Widths = {3, 5, 7};
  R.Constraints.InnermostWidths = {32};
  CompiledHybrid C = compileHybrid(ir::makeJacobi2D(512, 64), R);
  EXPECT_TRUE(C.schedule().params().isValid());
  EXPECT_LE(C.slabCosts().SharedBytes, 48 * 1024);
}

TEST(HybridCompilerTest, CudaEmissionStructure) {
  CompiledHybrid C =
      compileHybrid(ir::makeJacobi2D(256, 32), sizes(2, 3, {32}));
  std::string Src = emitCuda(C);
  EXPECT_NE(Src.find("__global__ void jacobi2d_phase0"), std::string::npos);
  EXPECT_NE(Src.find("__global__ void jacobi2d_phase1"), std::string::npos);
  EXPECT_NE(Src.find("blockIdx.x"), std::string::npos);
  EXPECT_NE(Src.find("__syncthreads()"), std::string::npos);
  EXPECT_NE(Src.find("jacobi2d_phase0<<<"), std::string::npos);
  // The executable rendering guards every update against the domain.
  EXPECT_NE(Src.find("s1 >= 1 && s1 < "), std::string::npos);
}

TEST(HybridCompilerTest, GlobalOnlyConfigHasNoSharedMemory) {
  CompiledHybrid C = compileHybrid(ir::makeJacobi2D(256, 32),
                                   sizes(2, 3, {32}),
                                   OptimizationConfig::level('a'));
  gpu::DeviceConfig Dev = gpu::DeviceConfig::gtx470();
  std::vector<gpu::KernelModel> Ks = C.kernelModels(Dev);
  EXPECT_EQ(Ks[0].SharedBytesPerBlock, 0);
  EXPECT_EQ(Ks[0].SharedLoadsPerSlab, 0);
  std::string Src = emitCuda(C);
  EXPECT_EQ(Src.find("__shared__"), std::string::npos);
}
