//===- RegisterTileTest.cpp - Register tiling extension tests -----------------===//

#include "codegen/HybridCompiler.h"
#include "ir/StencilGallery.h"

#include <gtest/gtest.h>

using namespace hextile;
using namespace hextile::codegen;

TEST(RegisterTileTest, UnitTileMatchesSlidingWindowCounts) {
  // RegisterTile = 1 must reproduce the Sec. 4.3.2 group counts.
  ir::StencilProgram J = ir::makeJacobi2D();
  EXPECT_DOUBLE_EQ(sharedLoadsPerPointRegisterTiled(J, 0, 1), 3.0);
  ir::StencilProgram H = ir::makeHeat3D();
  EXPECT_DOUBLE_EQ(sharedLoadsPerPointRegisterTiled(H, 0, 1), 9.0);
  ir::StencilProgram L = ir::makeLaplacian3D();
  // 7-point: groups (ds1, ds2) in {(0,0),(0,+-1),(+-1,0)} -> 5 groups.
  EXPECT_DOUBLE_EQ(sharedLoadsPerPointRegisterTiled(L, 0, 1), 5.0);
}

TEST(RegisterTileTest, LoadsDecreaseMonotonically) {
  ir::StencilProgram P = ir::makeHeat3D();
  double Prev = 1e9;
  for (int64_t RT : {1, 2, 4, 8}) {
    double Loads = sharedLoadsPerPointRegisterTiled(P, 0, RT);
    EXPECT_LT(Loads, Prev);
    Prev = Loads;
  }
  // heat3d at rt=2: 3 groups x (3+1)/2 = 6 loads per point.
  EXPECT_DOUBLE_EQ(sharedLoadsPerPointRegisterTiled(P, 0, 2), 6.0);
  // Asymptotically one value per group per point: -> 3.
  EXPECT_NEAR(sharedLoadsPerPointRegisterTiled(P, 0, 64), 3.0, 0.2);
}

TEST(RegisterTileTest, ImprovesSharedBoundKernels) {
  ir::StencilProgram P = ir::makeHeat3D(384, 128);
  TileSizeRequest Sizes;
  Sizes.H = 2;
  Sizes.W0 = 7;
  Sizes.InnerWidths = {10, 32};
  gpu::DeviceConfig Dev = gpu::DeviceConfig::gtx470();

  OptimizationConfig Base = OptimizationConfig::level('f');
  OptimizationConfig Tiled = Base;
  Tiled.RegisterTile = 2;
  double GF0 = gpu::simulate(Dev, compileHybrid(P, Sizes, Base)
                                      .kernelModels(Dev))
                   .GFlops;
  double GF2 = gpu::simulate(Dev, compileHybrid(P, Sizes, Tiled)
                                      .kernelModels(Dev))
                   .GFlops;
  EXPECT_GT(GF2, GF0);
}

TEST(RegisterTileTest, SemanticsUnchanged) {
  // Register tiling is a pure code-generation change: the schedule and
  // results are identical.
  ir::StencilProgram P = ir::makeHeat2D(16, 5);
  TileSizeRequest Sizes;
  Sizes.H = 1;
  Sizes.W0 = 3;
  Sizes.InnerWidths = {5};
  OptimizationConfig C = OptimizationConfig::level('f');
  C.RegisterTile = 4;
  CompiledHybrid Compiled = compileHybrid(P, Sizes, C);
  EXPECT_EQ(exec::checkScheduleEquivalence(P, Compiled.scheduleKey(3)), "");
}
