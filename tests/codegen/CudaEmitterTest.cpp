//===- CudaEmitterTest.cpp - CUDA rendering tests ------------------------------===//

#include "codegen/CudaEmitter.h"
#include "codegen/HybridCompiler.h"
#include "ir/StencilGallery.h"

#include <gtest/gtest.h>

using namespace hextile;
using namespace hextile::codegen;

namespace {

CompiledHybrid compile(const ir::StencilProgram &P, int64_t H, int64_t W0,
                       std::vector<int64_t> Inner,
                       OptimizationConfig Config = {}) {
  TileSizeRequest R;
  R.H = H;
  R.W0 = W0;
  R.InnerWidths = std::move(Inner);
  return compileHybrid(P, R, Config);
}

} // namespace

TEST(CudaEmitterTest, ThreeDimensionalKernelStructure) {
  CompiledHybrid C = compile(ir::makeHeat3D(64, 8), 2, 3, {4, 32});
  std::string Src = emitCuda(C);
  // Two sequential classical tile loops inside the kernel (S1 and S2).
  EXPECT_NE(Src.find("for (ht_int S1 = "), std::string::npos);
  EXPECT_NE(Src.find("for (ht_int S2 = "), std::string::npos);
  // Time loop over the 2h+2 = 6 local rows, with the row barrier.
  EXPECT_NE(Src.find("for (ht_int a = 0; a < 6; ++a)"), std::string::npos);
  EXPECT_NE(Src.find("__syncthreads();"), std::string::npos);
  // Threads cover each row with a blockDim-stride loop.
  EXPECT_NE(Src.find("ht_tid += (ht_int)blockDim.x"), std::string::npos);
}

TEST(CudaEmitterTest, FdtdEmitsAllFieldsAndStatements) {
  CompiledHybrid C = compile(ir::makeFdtd2D(64, 6), 2, 3, {8});
  std::string Src = emitCuda(C);
  EXPECT_NE(Src.find("float *g_ey"), std::string::npos);
  EXPECT_NE(Src.find("float *g_ex"), std::string::npos);
  EXPECT_NE(Src.find("float *g_hz"), std::string::npos);
  // Multi-statement programs dispatch on the canonical time.
  EXPECT_NE(Src.find("switch ((int)(t % 3))"), std::string::npos);
  EXPECT_NE(Src.find("case 0: { // ey"), std::string::npos);
  EXPECT_NE(Src.find("case 1: { // ex"), std::string::npos);
  EXPECT_NE(Src.find("case 2: { // hz"), std::string::npos);
}

TEST(CudaEmitterTest, ScheduleCommentMatchesFormulas) {
  CompiledHybrid C = compile(ir::makeJacobi2D(64, 8), 2, 3, {8});
  std::string Src = emitCuda(C);
  // The schedule header comment carries the Fig. 6 forms.
  EXPECT_NE(Src.find("floor((t + 3) / 6)"), std::string::npos);
  EXPECT_NE(Src.find("(t mod 6)"), std::string::npos);
}

TEST(CudaEmitterTest, MemoryStrategyAnnotatedAndRendered) {
  // The Sec. 4.2 staging ladder is named in the header *and* rendered:
  // staged configs declare __shared__ windows, the global-only config
  // addresses the rotating buffers directly.
  CompiledHybrid F = compile(ir::makeJacobi2D(64, 8), 2, 3, {8},
                             OptimizationConfig::level('f'));
  std::string SrcF = emitCuda(F);
  EXPECT_NE(SrcF.find("dynamic reuse"), std::string::npos);
  EXPECT_NE(SrcF.find("__shared__ float ht_s_A["), std::string::npos);
  CompiledHybrid E = compile(ir::makeJacobi2D(64, 8), 2, 3, {8},
                             OptimizationConfig::level('e'));
  EXPECT_NE(emitCuda(E).find("static reuse"), std::string::npos);
  CompiledHybrid A = compile(ir::makeJacobi2D(64, 8), 2, 3, {8},
                             OptimizationConfig::level('a'));
  std::string SrcA = emitCuda(A);
  EXPECT_NE(SrcA.find("global-memory only"), std::string::npos);
  EXPECT_EQ(SrcA.find("__shared__"), std::string::npos);
}

TEST(CudaEmitterTest, OversizedStagingWindowIsFlaggedInTheHeader) {
  // The hex flavor's degenerate inner tiles make the staging window span
  // the whole inner extent: at production sizes that exceeds any GPU's
  // per-block __shared__ budget, which nvcc would reject with an opaque
  // error. The emitted header must flag it; a tile-sized hybrid window
  // of the same compile must not be flagged.
  CompiledHybrid C = compile(ir::makeJacobi2D(3072, 16), 2, 3, {8});
  std::string Hex = emitCuda(C, EmitSchedule::Hex);
  std::string Hybrid = emitCuda(C, EmitSchedule::Hybrid);
  EXPECT_NE(Hex.find("// WARNING: staging windows need "),
            std::string::npos);
  EXPECT_EQ(Hybrid.find("// WARNING"), std::string::npos);
}

TEST(CudaEmitterTest, StagedKernelLoadsCooperativelyBeforeCompute) {
  // Config (b): the load phase is a blockDim-stride sweep over the
  // (depth x window) staging elements, synchronized before any staged
  // value is consumed, with the separate copy-out replay at the end.
  CompiledHybrid C = compile(ir::makeJacobi2D(64, 8), 2, 3, {8},
                             OptimizationConfig::level('b'));
  std::string Src = emitCuda(C);
  size_t Decl = Src.find("__shared__ float ht_s_A[");
  size_t Load = Src.find("// Cooperative load phase");
  size_t LoadLoop = Src.find("for (ht_int ht_ld = (ht_int)threadIdx.x;");
  size_t Barrier = Src.find("__syncthreads();", Load);
  size_t Compute = Src.find("const float ht_v0 = ht_s_A[");
  size_t CopyOut = Src.find("// Separate copy-out");
  ASSERT_NE(Decl, std::string::npos);
  ASSERT_NE(Load, std::string::npos);
  ASSERT_NE(LoadLoop, std::string::npos);
  ASSERT_NE(Barrier, std::string::npos);
  ASSERT_NE(Compute, std::string::npos);
  ASSERT_NE(CopyOut, std::string::npos);
  EXPECT_LT(Decl, Load);
  EXPECT_LT(Load, LoadLoop);
  EXPECT_LT(LoadLoop, Barrier);
  EXPECT_LT(Barrier, Compute);
  EXPECT_LT(Compute, CopyOut);
}

TEST(CudaEmitterTest, HostLoopLaunchesBothPhases) {
  CompiledHybrid C = compile(ir::makeJacobi2D(64, 8), 2, 3, {8});
  std::string Src = emitCuda(C);
  size_t P0 = Src.find("jacobi2d_phase0<<<");
  size_t P1 = Src.find("jacobi2d_phase1<<<");
  ASSERT_NE(P0, std::string::npos);
  ASSERT_NE(P1, std::string::npos);
  EXPECT_LT(P0, P1); // Phase 0 launches first within a time tile.
}

TEST(CudaEmitterTest, DomainGuardsClampEveryDimension) {
  // 64x64 grid, halo 1: updates guarded to [1, 63) in both dimensions.
  CompiledHybrid C = compile(ir::makeJacobi2D(64, 8), 1, 2, {8});
  std::string Src = emitCuda(C);
  EXPECT_NE(Src.find("s0 >= 1 && s0 < 63"), std::string::npos);
  EXPECT_NE(Src.find("s1 >= 1 && s1 < 63"), std::string::npos);
}

TEST(CudaEmitterTest, HexFlavorLeavesInnerDimensionsUntiled) {
  CompiledHybrid C = compile(ir::makeJacobi2D(64, 8), 2, 3, {8});
  std::string Src = emitCuda(C, EmitSchedule::Hex);
  // One degenerate inner tile: no sequential S1 loop, no skew table.
  EXPECT_NE(Src.find("const ht_int S1 = 0;"), std::string::npos);
  EXPECT_EQ(Src.find("for (ht_int S1 = "), std::string::npos);
  EXPECT_EQ(Src.find("ht_skew1"), std::string::npos);
}

TEST(CudaEmitterTest, ClassicalFlavorEmitsBandKernel) {
  CompiledHybrid C = compile(ir::makeJacobi2D(64, 8), 2, 3, {8});
  std::string Src = emitCuda(C, EmitSchedule::Classical);
  // Single band kernel over skewed tiles of every spatial dimension.
  EXPECT_NE(Src.find("jacobi2d_band"), std::string::npos);
  EXPECT_EQ(Src.find("_phase0"), std::string::npos);
  EXPECT_NE(Src.find("for (ht_int S0 = "), std::string::npos);
  EXPECT_NE(Src.find("ht_skew0"), std::string::npos);
  EXPECT_NE(Src.find("for (ht_int u = 0; u < 6; ++u)"), std::string::npos);
}

TEST(CudaEmitterTest, ConstantsAreExactHexFloats) {
  // 0.2f is not exactly representable in decimal: the emitted literal must
  // be the hex-float form that round-trips the bits, never a rounded
  // decimal rendering.
  CompiledHybrid C = compile(ir::makeJacobi2D(64, 8), 2, 3, {8});
  std::string Src = emitCuda(C);
  EXPECT_NE(Src.find("0x1.99999ap-3f"), std::string::npos);
  EXPECT_EQ(Src.find("0.200000"), std::string::npos);
}
