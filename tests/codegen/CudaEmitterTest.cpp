//===- CudaEmitterTest.cpp - CUDA rendering tests ------------------------------===//

#include "codegen/CudaEmitter.h"
#include "codegen/HybridCompiler.h"
#include "ir/StencilGallery.h"

#include <gtest/gtest.h>

using namespace hextile;
using namespace hextile::codegen;

namespace {

CompiledHybrid compile(const ir::StencilProgram &P, int64_t H, int64_t W0,
                       std::vector<int64_t> Inner,
                       OptimizationConfig Config = {}) {
  TileSizeRequest R;
  R.H = H;
  R.W0 = W0;
  R.InnerWidths = std::move(Inner);
  return compileHybrid(P, R, Config);
}

} // namespace

TEST(CudaEmitterTest, ThreeDimensionalKernelStructure) {
  CompiledHybrid C = compile(ir::makeHeat3D(64, 8), 2, 3, {4, 32});
  std::string Src = emitCuda(C);
  // Two sequential classical loops inside the kernel (S1 and S2).
  EXPECT_NE(Src.find("for (int S1 = 0;"), std::string::npos);
  EXPECT_NE(Src.find("for (int S2 = 0;"), std::string::npos);
  // Shared window with the rotating depth and the halo'd extents.
  EXPECT_NE(Src.find("__shared__ float s_A[2]"), std::string::npos);
  // Time loop over the 2h+2 = 6 local rows.
  EXPECT_NE(Src.find("for (int a = 0; a < 6; ++a)"), std::string::npos);
}

TEST(CudaEmitterTest, FdtdEmitsAllFields) {
  CompiledHybrid C = compile(ir::makeFdtd2D(64, 6), 2, 3, {8});
  std::string Src = emitCuda(C);
  EXPECT_NE(Src.find("float *g_ey"), std::string::npos);
  EXPECT_NE(Src.find("float *g_ex"), std::string::npos);
  EXPECT_NE(Src.find("float *g_hz"), std::string::npos);
  // Each statement appears in the unrolled full-tile listing.
  EXPECT_NE(Src.find("stmt ey"), std::string::npos);
  EXPECT_NE(Src.find("stmt ex"), std::string::npos);
  EXPECT_NE(Src.find("stmt hz"), std::string::npos);
}

TEST(CudaEmitterTest, ScheduleCommentMatchesFormulas) {
  CompiledHybrid C = compile(ir::makeJacobi2D(64, 8), 2, 3, {8});
  std::string Src = emitCuda(C);
  // The schedule header comment carries the Fig. 6 forms.
  EXPECT_NE(Src.find("floor((t + 3) / 6)"), std::string::npos);
  EXPECT_NE(Src.find("(t mod 6)"), std::string::npos);
}

TEST(CudaEmitterTest, ReuseConfigAnnotatesKernels) {
  OptimizationConfig F = OptimizationConfig::level('f');
  CompiledHybrid C = compile(ir::makeJacobi2D(64, 8), 2, 3, {8}, F);
  std::string Src = emitCuda(C);
  EXPECT_NE(Src.find("inter-tile reuse: move the previous tile's overlap"),
            std::string::npos);
  OptimizationConfig E = OptimizationConfig::level('e');
  CompiledHybrid CE = compile(ir::makeJacobi2D(64, 8), 2, 3, {8}, E);
  EXPECT_NE(emitCuda(CE).find("static global->shared mapping"),
            std::string::npos);
}

TEST(CudaEmitterTest, SeparateCopyOutAnnotated) {
  OptimizationConfig B = OptimizationConfig::level('b');
  CompiledHybrid C = compile(ir::makeJacobi2D(64, 8), 2, 3, {8}, B);
  std::string Src = emitCuda(C);
  EXPECT_NE(Src.find("separate copy-out phase"), std::string::npos);
  EXPECT_EQ(Src.find("interleaved copy-out: stores issue"),
            std::string::npos);
}

TEST(CudaEmitterTest, HostLoopLaunchesBothPhases) {
  CompiledHybrid C = compile(ir::makeJacobi2D(64, 8), 2, 3, {8});
  std::string Src = emitCuda(C);
  size_t P0 = Src.find("jacobi2d_phase0<<<");
  size_t P1 = Src.find("jacobi2d_phase1<<<");
  ASSERT_NE(P0, std::string::npos);
  ASSERT_NE(P1, std::string::npos);
  EXPECT_LT(P0, P1); // Phase 0 launches first within a time tile.
}

TEST(CudaEmitterTest, FullAndPartialTilePathsPresent) {
  CompiledHybrid C = compile(ir::makeJacobi2D(64, 8), 1, 2, {8});
  std::string Src = emitCuda(C);
  EXPECT_NE(Src.find("if (__tile_is_full)"), std::string::npos);
  EXPECT_NE(Src.find("partial tiles: generic guarded code"),
            std::string::npos);
}
