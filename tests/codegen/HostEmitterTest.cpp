//===- HostEmitterTest.cpp - Host (CPU shim) rendering tests ------------------===//
//
// Structure, golden-snapshot and regression tests for the HostEmitter
// target. The golden literal is re-baselined like CudaEmitterGoldenTest:
// copy the "actual" text from the failure output when drift is intended.
//
//===----------------------------------------------------------------------===//

#include "codegen/HostEmitter.h"
#include "codegen/HybridCompiler.h"
#include "ir/StencilGallery.h"

#include <gtest/gtest.h>

using namespace hextile;
using namespace hextile::codegen;

namespace {

CompiledHybrid compile(const ir::StencilProgram &P, int64_t H, int64_t W0,
                       std::vector<int64_t> Inner) {
  TileSizeRequest R;
  R.H = H;
  R.W0 = W0;
  R.InnerWidths = std::move(Inner);
  return compileHybrid(P, R);
}

/// The snapshot subject mirrors CudaEmitterGoldenTest: jacobi 1D, h=1,
/// w0=2, hybrid flavor.
std::string emitSnapshotSubject() {
  TileSizeRequest R;
  R.H = 1;
  R.W0 = 2;
  CompiledHybrid C = compileHybrid(ir::makeJacobi1D(32, 8), R);
  return emitHost(C);
}

constexpr const char *GoldenHost = R"golden(// jacobi1d: hybrid tiling, host (CPU shim) rendering
// tile: h=1, w0=2, delta0=1, delta1=1
// memory strategy modeled for the GPU: shared memory + interleaved copy-out + aligned loads + dynamic reuse
// (the host rendering addresses the global rotating buffers directly)
#include "cuda_shim.h"

// Hexagon row b-ranges per local time a (empty rows have lo > hi).
HT_TABLE ht_row_lo[4] = {1, 0, 0, 1};
HT_TABLE ht_row_hi[4] = {3, 4, 4, 3};

__global__ void jacobi1d_phase0(ht_int ht_block, float *g_A, ht_int TT, ht_int S0lo) {
  const ht_int S0 = S0lo + ht_block;
  const ht_int t0 = TT * 4 + (-2);
  const ht_int s0_0 = S0 * 8 - TT * (0) + (-4);
  for (ht_int a = 0; a < 4; ++a) {
    const ht_int t = t0 + a;
    const ht_int ht_nb = ht_row_hi[a] - ht_row_lo[a] + 1;
    if (t >= 0 && t < 8 && ht_nb > 0) {
      HT_FOR_THREADS(ht_tid, ht_nb) {
        const ht_int s0 = s0_0 + ht_row_lo[a] + ht_tid;
        if (s0 >= 1 && s0 < 31) {
          const ht_int ht_step = t;
          // jacobi
          const float ht_v0 = HT_AT(g_A, ht_emod(ht_step + (-1), 2) * 32 + (s0 + (-1)), 64);
          const float ht_v1 = HT_AT(g_A, ht_emod(ht_step + (-1), 2) * 32 + s0, 64);
          const float ht_v2 = HT_AT(g_A, ht_emod(ht_step + (-1), 2) * 32 + (s0 + (1)), 64);
          HT_AT(g_A, ht_emod(ht_step, 2) * 32 + s0, 64) = (0x1.555556p-2f * ((ht_v0 + ht_v1) + ht_v2));
        }
      }
    }
    __syncthreads();
  }
}

__global__ void jacobi1d_phase1(ht_int ht_block, float *g_A, ht_int TT, ht_int S0lo) {
  const ht_int S0 = S0lo + ht_block;
  const ht_int t0 = TT * 4 + (0);
  const ht_int s0_0 = S0 * 8 - TT * (0) + (0);
  for (ht_int a = 0; a < 4; ++a) {
    const ht_int t = t0 + a;
    const ht_int ht_nb = ht_row_hi[a] - ht_row_lo[a] + 1;
    if (t >= 0 && t < 8 && ht_nb > 0) {
      HT_FOR_THREADS(ht_tid, ht_nb) {
        const ht_int s0 = s0_0 + ht_row_lo[a] + ht_tid;
        if (s0 >= 1 && s0 < 31) {
          const ht_int ht_step = t;
          // jacobi
          const float ht_v0 = HT_AT(g_A, ht_emod(ht_step + (-1), 2) * 32 + (s0 + (-1)), 64);
          const float ht_v1 = HT_AT(g_A, ht_emod(ht_step + (-1), 2) * 32 + s0, 64);
          const float ht_v2 = HT_AT(g_A, ht_emod(ht_step + (-1), 2) * 32 + (s0 + (1)), 64);
          HT_AT(g_A, ht_emod(ht_step, 2) * 32 + s0, 64) = (0x1.555556p-2f * ((ht_v0 + ht_v1) + ht_v2));
        }
      }
    }
    __syncthreads();
  }
}

static void jacobi1d_host(float *g_A) {
  for (ht_int TT = 0; TT <= 2; ++TT) {
    if (TT >= 0 && TT <= 2) {
      const ht_int ht_s0lo = ht_fdiv(8 + TT * (0), 8);
      const ht_int ht_s0hi = ht_fdiv(34 + TT * (0), 8);
      if (ht_s0hi >= ht_s0lo) {
        HT_LAUNCH_1D(jacobi1d_phase0, ht_s0hi - ht_s0lo + 1, g_A, TT, ht_s0lo);
      }
    }
    if (TT >= 0 && TT <= 1) {
      const ht_int ht_s0lo = ht_fdiv(4 + TT * (0), 8);
      const ht_int ht_s0hi = ht_fdiv(30 + TT * (0), 8);
      if (ht_s0hi >= ht_s0lo) {
        HT_LAUNCH_1D(jacobi1d_phase1, ht_s0hi - ht_s0lo + 1, g_A, TT, ht_s0lo);
      }
    }
  }
}

extern "C" void jacobi1d_run(float **ht_fields) {
  jacobi1d_host(ht_fields[0]);
}
)golden";

} // namespace

TEST(HostEmitterGoldenTest, Jacobi1DSnapshotIsStable) {
  EXPECT_EQ(emitSnapshotSubject(), GoldenHost)
      << "Emitted host C++ drifted from the golden snapshot. If the change "
         "is intended, replace the GoldenHost literal with the actual text "
         "above.";
}

TEST(HostEmitterGoldenTest, EmissionIsDeterministic) {
  EXPECT_EQ(emitSnapshotSubject(), emitSnapshotSubject());
}

TEST(HostEmitterTest, UnitIncludesShimAndExportsEntry) {
  ir::StencilProgram P = ir::makeJacobi2D(64, 8);
  CompiledHybrid C = compile(P, 2, 3, {8});
  std::string Src = emitHost(C);
  EXPECT_NE(Src.find("#include \"cuda_shim.h\""), std::string::npos);
  EXPECT_NE(Src.find("extern \"C\" void jacobi2d_run(float **ht_fields)"),
            std::string::npos);
  EXPECT_EQ(hostEntryName(P), "jacobi2d_run");
}

TEST(HostEmitterTest, EveryAccessIsBoundsChecked) {
  CompiledHybrid C = compile(ir::makeHeat2D(32, 6), 2, 3, {6});
  std::string Src = emitHost(C);
  // No raw buffer indexing escapes the shim's checked accessor: every
  // g_<field> subscript goes through HT_AT.
  EXPECT_EQ(Src.find("g_A["), std::string::npos);
  EXPECT_NE(Src.find("HT_AT(g_A, "), std::string::npos);
}

TEST(HostEmitterTest, ShimDefinesTheExecutionModel) {
  std::string Shim = hostShimSource();
  // The CUDA surface the emitted units rely on.
  EXPECT_NE(Shim.find("#define HT_LAUNCH_1D"), std::string::npos);
  EXPECT_NE(Shim.find("#define HT_FOR_THREADS"), std::string::npos);
  EXPECT_NE(Shim.find("void __syncthreads"), std::string::npos);
  EXPECT_NE(Shim.find("ht_at"), std::string::npos);
  EXPECT_NE(Shim.find("abort()"), std::string::npos);
}

TEST(HostEmitterTest, FlavorsRenderDistinctSchedules) {
  CompiledHybrid C = compile(ir::makeJacobi2D(48, 6), 2, 3, {6});
  std::string Hybrid = emitHost(C, EmitSchedule::Hybrid);
  std::string Hex = emitHost(C, EmitSchedule::Hex);
  std::string Classical = emitHost(C, EmitSchedule::Classical);
  EXPECT_NE(Hybrid.find("_phase0"), std::string::npos);
  EXPECT_NE(Hex.find("_phase0"), std::string::npos);
  EXPECT_NE(Classical.find("_band"), std::string::npos);
  // Hybrid tiles the inner dimension classically; hex leaves it untiled.
  EXPECT_NE(Hybrid.find("ht_skew1"), std::string::npos);
  EXPECT_EQ(Hex.find("ht_skew1"), std::string::npos);
}

/// Regression: the first differential run of the emitted classical flavor
/// caught the thread space dropping dimension 0 -- only one point per tile
/// row was enumerated, so most of each band went uncomputed (caught as a
/// bit-level divergence by the oracle's fourth mechanism, PR 4). The
/// classical forall-threads count must cover the *full* tile volume,
/// dimension 0's width included.
TEST(HostEmitterTest, RegressionClassicalThreadSpaceCoversDim0) {
  CompiledHybrid C = compile(ir::makeJacobi2D(48, 6), 2, 4, {6});
  std::string Src = emitHost(C, EmitSchedule::Classical);
  // w0 = 4, w1 = 6: 24 points per (tile, u) row.
  EXPECT_NE(Src.find("HT_FOR_THREADS(ht_tid, 24)"), std::string::npos);
  // ... and the decomposition binds dimension 0 from the quotient.
  EXPECT_NE(Src.find("const ht_int s0 = S0 * 4 + ht_r"), std::string::npos);
}
