//===- HostEmitterTest.cpp - Host (CPU shim) rendering tests ------------------===//
//
// Structure, golden-snapshot and regression tests for the HostEmitter
// target, covering both ends of the Sec. 4.2 ladder: the global-direct
// baseline (config (a)) and a staged kernel (config (b): shared-memory
// window, cooperative load phase, separate copy-out). The golden literals
// are re-baselined like CudaEmitterGoldenTest: copy the "actual" text from
// the failure output when drift is intended.
//
//===----------------------------------------------------------------------===//

#include "codegen/HostEmitter.h"
#include "codegen/HybridCompiler.h"
#include "ir/StencilGallery.h"

#include <gtest/gtest.h>

using namespace hextile;
using namespace hextile::codegen;

namespace {

/// Number of (non-overlapping) occurrences of \p Needle in \p Hay.
size_t countOf(const std::string &Hay, const std::string &Needle) {
  size_t N = 0;
  for (size_t At = Hay.find(Needle); At != std::string::npos;
       At = Hay.find(Needle, At + Needle.size()))
    ++N;
  return N;
}

CompiledHybrid compile(const ir::StencilProgram &P, int64_t H, int64_t W0,
                       std::vector<int64_t> Inner,
                       OptimizationConfig Config = {}) {
  TileSizeRequest R;
  R.H = H;
  R.W0 = W0;
  R.InnerWidths = std::move(Inner);
  return compileHybrid(P, R, Config);
}

/// The snapshot subject mirrors CudaEmitterGoldenTest: jacobi 1D, h=1,
/// w0=2, hybrid flavor, rendered at ladder rung \p Level.
std::string emitSnapshotSubject(char Level) {
  TileSizeRequest R;
  R.H = 1;
  R.W0 = 2;
  CompiledHybrid C = compileHybrid(ir::makeJacobi1D(32, 8), R,
                                   OptimizationConfig::level(Level));
  return emitHost(C);
}

/// Ladder rung (a): global-direct, no staging.
constexpr const char *GoldenHostBaseline = R"golden(// jacobi1d: hybrid tiling, host (CPU shim) rendering
// tile: h=1, w0=2, delta0=1, delta1=1
// memory strategy (Sec. 4.2 ladder): global-memory only
// (global-direct: kernels address the rotating buffers directly)
#include "cuda_shim.h"

// Hexagon row b-ranges per local time a (empty rows have lo > hi).
HT_TABLE ht_row_lo[4] = {1, 0, 0, 1};
HT_TABLE ht_row_hi[4] = {3, 4, 4, 3};

__global__ void jacobi1d_phase0(ht_int ht_block, float *g_A, ht_int TT, ht_int S0lo) {
  const ht_int S0 = S0lo + ht_block;
  const ht_int t0 = TT * 4 + (-2);
  const ht_int s0_0 = S0 * 8 - TT * (0) + (-4);
  for (ht_int a = 0; a < 4; ++a) {
    const ht_int t = t0 + a;
    const ht_int ht_nb = ht_row_hi[a] - ht_row_lo[a] + 1;
    if (t >= 0 && t < 8 && ht_nb > 0) {
      HT_FOR_THREADS(ht_tid, ht_nb) {
        const ht_int s0 = s0_0 + ht_row_lo[a] + ht_tid;
        if (s0 >= 1 && s0 < 31) {
          const ht_int ht_step = t;
          // jacobi
          const float ht_v0 = HT_AT(g_A, ht_emod(ht_step + (-1), 2) * 32 + (s0 + (-1)), 64);
          const float ht_v1 = HT_AT(g_A, ht_emod(ht_step + (-1), 2) * 32 + s0, 64);
          const float ht_v2 = HT_AT(g_A, ht_emod(ht_step + (-1), 2) * 32 + (s0 + (1)), 64);
          HT_AT(g_A, ht_emod(ht_step, 2) * 32 + s0, 64) = (0x1.555556p-2f * ((ht_v0 + ht_v1) + ht_v2));
        }
      }
    }
    __syncthreads();
  }
}

__global__ void jacobi1d_phase1(ht_int ht_block, float *g_A, ht_int TT, ht_int S0lo) {
  const ht_int S0 = S0lo + ht_block;
  const ht_int t0 = TT * 4 + (0);
  const ht_int s0_0 = S0 * 8 - TT * (0) + (0);
  for (ht_int a = 0; a < 4; ++a) {
    const ht_int t = t0 + a;
    const ht_int ht_nb = ht_row_hi[a] - ht_row_lo[a] + 1;
    if (t >= 0 && t < 8 && ht_nb > 0) {
      HT_FOR_THREADS(ht_tid, ht_nb) {
        const ht_int s0 = s0_0 + ht_row_lo[a] + ht_tid;
        if (s0 >= 1 && s0 < 31) {
          const ht_int ht_step = t;
          // jacobi
          const float ht_v0 = HT_AT(g_A, ht_emod(ht_step + (-1), 2) * 32 + (s0 + (-1)), 64);
          const float ht_v1 = HT_AT(g_A, ht_emod(ht_step + (-1), 2) * 32 + s0, 64);
          const float ht_v2 = HT_AT(g_A, ht_emod(ht_step + (-1), 2) * 32 + (s0 + (1)), 64);
          HT_AT(g_A, ht_emod(ht_step, 2) * 32 + s0, 64) = (0x1.555556p-2f * ((ht_v0 + ht_v1) + ht_v2));
        }
      }
    }
    __syncthreads();
  }
}

static void jacobi1d_host(float *g_A) {
  for (ht_int TT = 0; TT <= 2; ++TT) {
    if (TT >= 0 && TT <= 2) {
      const ht_int ht_s0lo = ht_fdiv(8 + TT * (0), 8);
      const ht_int ht_s0hi = ht_fdiv(34 + TT * (0), 8);
      if (ht_s0hi >= ht_s0lo) {
        HT_LAUNCH_1D(jacobi1d_phase0, ht_s0hi - ht_s0lo + 1, g_A, TT, ht_s0lo);
      }
    }
    if (TT >= 0 && TT <= 1) {
      const ht_int ht_s0lo = ht_fdiv(4 + TT * (0), 8);
      const ht_int ht_s0hi = ht_fdiv(30 + TT * (0), 8);
      if (ht_s0hi >= ht_s0lo) {
        HT_LAUNCH_1D(jacobi1d_phase1, ht_s0hi - ht_s0lo + 1, g_A, TT, ht_s0lo);
      }
    }
  }
}

extern "C" void jacobi1d_run(float **ht_fields) {
  jacobi1d_host(ht_fields[0]);
}
)golden";

/// Ladder rung (b): shared-memory staging window, cooperative load phase,
/// separate copy-out.
constexpr const char *GoldenHostStaged = R"golden(// jacobi1d: hybrid tiling, host (CPU shim) rendering
// tile: h=1, w0=2, delta0=1, delta1=1
// memory strategy (Sec. 4.2 ladder): shared memory
// (staged: cooperative load into a per-tile window, separate copy-out)
#include "cuda_shim.h"

// Hexagon row b-ranges per local time a (empty rows have lo > hi).
HT_TABLE ht_row_lo[4] = {1, 0, 0, 1};
HT_TABLE ht_row_hi[4] = {3, 4, 4, 3};

__global__ void jacobi1d_phase0(ht_int ht_block, float *g_A, ht_int TT, ht_int S0lo) {
  const ht_int S0 = S0lo + ht_block;
  // Sec. 4.2 staging: per-tile 7 window per rotating copy.
  HT_SHARED(ht_s_A, 14);
  const ht_int t0 = TT * 4 + (-2);
  const ht_int s0_0 = S0 * 8 - TT * (0) + (-4);
  const ht_int ht_wb0 = s0_0 + (-1);
  // Cooperative load phase: global -> staging window.
  HT_FOR_THREADS(ht_ld, 14) {
    ht_int ht_r = ht_ld;
    const ht_int ht_w0 = ht_r % 7; ht_r /= 7;
    const ht_int ht_g0 = ht_wb0 + ht_w0;
    if (ht_g0 >= 0 && ht_g0 < 32) {
      HT_AT(ht_s_A, ht_r * 7 + ht_w0, 14) = HT_AT(g_A, ht_r * 32 + ht_g0, 64);
    }
  }
  __syncthreads();
  for (ht_int a = 0; a < 4; ++a) {
    const ht_int t = t0 + a;
    const ht_int ht_nb = ht_row_hi[a] - ht_row_lo[a] + 1;
    if (t >= 0 && t < 8 && ht_nb > 0) {
      HT_FOR_THREADS(ht_tid, ht_nb) {
        const ht_int s0 = s0_0 + ht_row_lo[a] + ht_tid;
        if (s0 >= 1 && s0 < 31) {
          const ht_int ht_step = t;
          // jacobi
          const float ht_v0 = HT_AT(ht_s_A, ht_emod(ht_step + (-1), 2) * 7 + (s0 + (-1) - ht_wb0), 14);
          const float ht_v1 = HT_AT(ht_s_A, ht_emod(ht_step + (-1), 2) * 7 + (s0 - ht_wb0), 14);
          const float ht_v2 = HT_AT(ht_s_A, ht_emod(ht_step + (-1), 2) * 7 + (s0 + (1) - ht_wb0), 14);
          const float ht_out = (0x1.555556p-2f * ((ht_v0 + ht_v1) + ht_v2));
          HT_AT(ht_s_A, ht_emod(ht_step, 2) * 7 + (s0 - ht_wb0), 14) = ht_out;
        }
      }
    }
    __syncthreads();
  }
  // Separate copy-out: staged results -> global (interleaving off).
  for (ht_int a = 0; a < 4; ++a) {
    const ht_int t = t0 + a;
    const ht_int ht_nb = ht_row_hi[a] - ht_row_lo[a] + 1;
    if (t >= 0 && t < 8 && ht_nb > 0) {
      HT_FOR_THREADS(ht_tid, ht_nb) {
        const ht_int s0 = s0_0 + ht_row_lo[a] + ht_tid;
        if (s0 >= 1 && s0 < 31) {
          const ht_int ht_step = t;
          // jacobi
          HT_AT(g_A, ht_emod(ht_step, 2) * 32 + s0, 64) = HT_AT(ht_s_A, ht_emod(ht_step, 2) * 7 + (s0 - ht_wb0), 14);
        }
      }
    }
    __syncthreads();
  }
}

__global__ void jacobi1d_phase1(ht_int ht_block, float *g_A, ht_int TT, ht_int S0lo) {
  const ht_int S0 = S0lo + ht_block;
  // Sec. 4.2 staging: per-tile 7 window per rotating copy.
  HT_SHARED(ht_s_A, 14);
  const ht_int t0 = TT * 4 + (0);
  const ht_int s0_0 = S0 * 8 - TT * (0) + (0);
  const ht_int ht_wb0 = s0_0 + (-1);
  // Cooperative load phase: global -> staging window.
  HT_FOR_THREADS(ht_ld, 14) {
    ht_int ht_r = ht_ld;
    const ht_int ht_w0 = ht_r % 7; ht_r /= 7;
    const ht_int ht_g0 = ht_wb0 + ht_w0;
    if (ht_g0 >= 0 && ht_g0 < 32) {
      HT_AT(ht_s_A, ht_r * 7 + ht_w0, 14) = HT_AT(g_A, ht_r * 32 + ht_g0, 64);
    }
  }
  __syncthreads();
  for (ht_int a = 0; a < 4; ++a) {
    const ht_int t = t0 + a;
    const ht_int ht_nb = ht_row_hi[a] - ht_row_lo[a] + 1;
    if (t >= 0 && t < 8 && ht_nb > 0) {
      HT_FOR_THREADS(ht_tid, ht_nb) {
        const ht_int s0 = s0_0 + ht_row_lo[a] + ht_tid;
        if (s0 >= 1 && s0 < 31) {
          const ht_int ht_step = t;
          // jacobi
          const float ht_v0 = HT_AT(ht_s_A, ht_emod(ht_step + (-1), 2) * 7 + (s0 + (-1) - ht_wb0), 14);
          const float ht_v1 = HT_AT(ht_s_A, ht_emod(ht_step + (-1), 2) * 7 + (s0 - ht_wb0), 14);
          const float ht_v2 = HT_AT(ht_s_A, ht_emod(ht_step + (-1), 2) * 7 + (s0 + (1) - ht_wb0), 14);
          const float ht_out = (0x1.555556p-2f * ((ht_v0 + ht_v1) + ht_v2));
          HT_AT(ht_s_A, ht_emod(ht_step, 2) * 7 + (s0 - ht_wb0), 14) = ht_out;
        }
      }
    }
    __syncthreads();
  }
  // Separate copy-out: staged results -> global (interleaving off).
  for (ht_int a = 0; a < 4; ++a) {
    const ht_int t = t0 + a;
    const ht_int ht_nb = ht_row_hi[a] - ht_row_lo[a] + 1;
    if (t >= 0 && t < 8 && ht_nb > 0) {
      HT_FOR_THREADS(ht_tid, ht_nb) {
        const ht_int s0 = s0_0 + ht_row_lo[a] + ht_tid;
        if (s0 >= 1 && s0 < 31) {
          const ht_int ht_step = t;
          // jacobi
          HT_AT(g_A, ht_emod(ht_step, 2) * 32 + s0, 64) = HT_AT(ht_s_A, ht_emod(ht_step, 2) * 7 + (s0 - ht_wb0), 14);
        }
      }
    }
    __syncthreads();
  }
}

static void jacobi1d_host(float *g_A) {
  for (ht_int TT = 0; TT <= 2; ++TT) {
    if (TT >= 0 && TT <= 2) {
      const ht_int ht_s0lo = ht_fdiv(8 + TT * (0), 8);
      const ht_int ht_s0hi = ht_fdiv(34 + TT * (0), 8);
      if (ht_s0hi >= ht_s0lo) {
        HT_LAUNCH_1D(jacobi1d_phase0, ht_s0hi - ht_s0lo + 1, g_A, TT, ht_s0lo);
      }
    }
    if (TT >= 0 && TT <= 1) {
      const ht_int ht_s0lo = ht_fdiv(4 + TT * (0), 8);
      const ht_int ht_s0hi = ht_fdiv(30 + TT * (0), 8);
      if (ht_s0hi >= ht_s0lo) {
        HT_LAUNCH_1D(jacobi1d_phase1, ht_s0hi - ht_s0lo + 1, g_A, TT, ht_s0lo);
      }
    }
  }
}

extern "C" void jacobi1d_run(float **ht_fields) {
  jacobi1d_host(ht_fields[0]);
}
)golden";

} // namespace

TEST(HostEmitterGoldenTest, Jacobi1DBaselineSnapshotIsStable) {
  EXPECT_EQ(emitSnapshotSubject('a'), GoldenHostBaseline)
      << "Emitted host C++ drifted from the golden snapshot. If the change "
         "is intended, replace the GoldenHostBaseline literal with the "
         "actual text above.";
}

TEST(HostEmitterGoldenTest, Jacobi1DStagedSnapshotIsStable) {
  EXPECT_EQ(emitSnapshotSubject('b'), GoldenHostStaged)
      << "Emitted staged host C++ drifted from the golden snapshot. If the "
         "change is intended, replace the GoldenHostStaged literal with "
         "the actual text above.";
}

TEST(HostEmitterGoldenTest, EmissionIsDeterministic) {
  EXPECT_EQ(emitSnapshotSubject('d'), emitSnapshotSubject('d'));
}

TEST(HostEmitterTest, UnitIncludesShimAndExportsEntry) {
  ir::StencilProgram P = ir::makeJacobi2D(64, 8);
  CompiledHybrid C = compile(P, 2, 3, {8});
  std::string Src = emitHost(C);
  EXPECT_NE(Src.find("#include \"cuda_shim.h\""), std::string::npos);
  EXPECT_NE(Src.find("extern \"C\" void jacobi2d_run(float **ht_fields)"),
            std::string::npos);
  EXPECT_EQ(hostEntryName(P), "jacobi2d_run");
}

TEST(HostEmitterTest, EveryAccessIsBoundsChecked) {
  CompiledHybrid C = compile(ir::makeHeat2D(32, 6), 2, 3, {6});
  std::string Src = emitHost(C);
  // No raw buffer indexing escapes the shim's checked accessor: every
  // global g_<field> and staged ht_s_<field> subscript goes through HT_AT.
  EXPECT_EQ(Src.find("g_A["), std::string::npos);
  EXPECT_EQ(Src.find("ht_s_A["), std::string::npos);
  EXPECT_NE(Src.find("HT_AT(g_A, "), std::string::npos);
  EXPECT_NE(Src.find("HT_AT(ht_s_A, "), std::string::npos);
}

TEST(HostEmitterTest, ShimDefinesTheExecutionModel) {
  std::string Shim = hostShimSource();
  // The CUDA surface the emitted units rely on.
  EXPECT_NE(Shim.find("#define HT_LAUNCH_1D"), std::string::npos);
  EXPECT_NE(Shim.find("#define HT_FOR_THREADS"), std::string::npos);
  EXPECT_NE(Shim.find("#define HT_SHARED"), std::string::npos);
  EXPECT_NE(Shim.find("void __syncthreads"), std::string::npos);
  EXPECT_NE(Shim.find("ht_at"), std::string::npos);
  EXPECT_NE(Shim.find("abort()"), std::string::npos);
}

TEST(HostEmitterTest, ParallelShimSelectionIsEmittedPerUnit) {
  // The shim ships both execution models; a unit selects the parallel one
  // by defining HT_SHIM_THREADS before the include. Serial units must not
  // define it (their text -- and compile key -- stays byte-identical to
  // the pre-parallel renderer; the goldens above pin that), and staged
  // parallel units must additionally pin the single-team rule, because
  // cooperative loads of neighboring blocks overlap in their halos.
  std::string Shim = hostShimSource();
  EXPECT_NE(Shim.find("namespace ht_shim"), std::string::npos);
  EXPECT_NE(Shim.find("HT_SHIM_TEAMS"), std::string::npos);
  EXPECT_NE(Shim.find("barrier()"), std::string::npos);

  ir::StencilProgram P = ir::makeJacobi2D(48, 6);
  std::string Serial =
      emitHost(compile(P, 2, 3, {6}, OptimizationConfig::level('d')));
  EXPECT_EQ(Serial.find("HT_SHIM_THREADS"), std::string::npos);

  OptimizationConfig Par = OptimizationConfig::level('a');
  Par.ShimThreads = 4;
  std::string ParallelUnstaged =
      emitHost(compile(P, 2, 3, {6}, Par));
  EXPECT_NE(ParallelUnstaged.find("#define HT_SHIM_THREADS 4"),
            std::string::npos);
  EXPECT_EQ(ParallelUnstaged.find("HT_SHIM_SINGLE_TEAM"),
            std::string::npos);

  Par = OptimizationConfig::level('d');
  Par.ShimThreads = 2;
  std::string ParallelStaged = emitHost(compile(P, 2, 3, {6}, Par));
  EXPECT_NE(ParallelStaged.find("#define HT_SHIM_THREADS 2"),
            std::string::npos);
  EXPECT_NE(ParallelStaged.find("#define HT_SHIM_SINGLE_TEAM 1"),
            std::string::npos);
}

TEST(HostEmitterTest, FlavorsRenderDistinctSchedules) {
  CompiledHybrid C = compile(ir::makeJacobi2D(48, 6), 2, 3, {6});
  std::string Hybrid = emitHost(C, EmitSchedule::Hybrid);
  std::string Hex = emitHost(C, EmitSchedule::Hex);
  std::string Classical = emitHost(C, EmitSchedule::Classical);
  EXPECT_NE(Hybrid.find("_phase0"), std::string::npos);
  EXPECT_NE(Hex.find("_phase0"), std::string::npos);
  EXPECT_NE(Classical.find("_band"), std::string::npos);
  // Hybrid tiles the inner dimension classically; hex leaves it untiled.
  EXPECT_NE(Hybrid.find("ht_skew1"), std::string::npos);
  EXPECT_EQ(Hex.find("ht_skew1"), std::string::npos);
}

/// The staged kernel structure the Sec. 4.2 ladder rungs must render: a
/// staging declaration, the cooperative load phase with its barrier
/// *before* the first compute access, and the separate-vs-interleaved
/// copy-out shapes.
TEST(HostEmitterTest, StagedKernelHasLoadPhaseBarrierBeforeCompute) {
  CompiledHybrid C = compile(ir::makeJacobi2D(48, 6), 2, 3, {6},
                             OptimizationConfig::level('b'));
  std::string Src = emitHost(C);
  size_t Decl = Src.find("HT_SHARED(ht_s_A, ");
  size_t Load = Src.find("// Cooperative load phase");
  size_t Barrier = Src.find("__syncthreads();", Load);
  size_t Compute = Src.find("const float ht_v0 = HT_AT(ht_s_A, ");
  ASSERT_NE(Decl, std::string::npos);
  ASSERT_NE(Load, std::string::npos);
  ASSERT_NE(Barrier, std::string::npos);
  ASSERT_NE(Compute, std::string::npos);
  EXPECT_LT(Decl, Load);
  EXPECT_LT(Load, Barrier);
  EXPECT_LT(Barrier, Compute);
}

TEST(HostEmitterTest, SeparateVersusInterleavedCopyOutShapes) {
  ir::StencilProgram P = ir::makeJacobi2D(48, 6);
  std::string Separate =
      emitHost(compile(P, 2, 3, {6}, OptimizationConfig::level('b')));
  std::string Interleaved =
      emitHost(compile(P, 2, 3, {6}, OptimizationConfig::level('c')));
  // Separate copy-out: each phase kernel gets a second guarded time loop
  // moving staged results out, and the compute stores only to staging
  // (one "= ht_out;" per phase).
  EXPECT_EQ(countOf(Separate, "// Separate copy-out"), 2u);
  EXPECT_EQ(countOf(Separate, "= ht_out;"), 2u);
  // Interleaved copy-out: no second loop; every compute stores to both
  // staging and global (two "= ht_out;" per phase).
  EXPECT_EQ(countOf(Interleaved, "// Separate copy-out"), 0u);
  EXPECT_EQ(countOf(Interleaved, "= ht_out;"), 4u);
}

TEST(HostEmitterTest, AlignedLoadsTranslateTheWindowBase) {
  ir::StencilProgram P = ir::makeJacobi2D(48, 6);
  std::string Aligned =
      emitHost(compile(P, 2, 3, {6}, OptimizationConfig::level('d')));
  std::string Natural =
      emitHost(compile(P, 2, 3, {6}, OptimizationConfig::level('c')));
  // Sec. 4.2.3: the innermost window base is rounded down to the 128-byte
  // (32-float) quantum; the natural placement is not.
  EXPECT_NE(Aligned.find(", 32) * 32;"), std::string::npos);
  EXPECT_EQ(Natural.find(", 32) * 32;"), std::string::npos);
}

TEST(HostEmitterTest, StaticReusePlacementIsGated) {
  ir::StencilProgram P = ir::makeJacobi1D(40, 8);
  OptimizationConfig Static = OptimizationConfig::level('e');
  std::string Windowed = emitHost(compile(P, 2, 3, {}, Static));
  Static.EmitStaticReuse = true;
  std::string Placed = emitHost(compile(P, 2, 3, {}, Static));
  // Without the gate, Reuse=Static only affects the cost model: staged
  // addressing stays window-relative. With the gate, the fixed
  // s mod extent placement appears in the staged indices.
  EXPECT_NE(Windowed.find(" - ht_wb0)"), std::string::npos);
  EXPECT_EQ(Windowed.find("+ ht_emod(s0, "), std::string::npos);
  EXPECT_NE(Placed.find("+ ht_emod(s0, "), std::string::npos);
}

TEST(HostEmitterTest, GlobalDirectConfigStillAddressesGlobalBuffers) {
  CompiledHybrid C = compile(ir::makeJacobi2D(48, 6), 2, 3, {6},
                             OptimizationConfig::level('a'));
  std::string Src = emitHost(C);
  EXPECT_EQ(Src.find("HT_SHARED"), std::string::npos);
  EXPECT_EQ(Src.find("// Cooperative load phase"), std::string::npos);
  EXPECT_NE(Src.find("const float ht_v0 = HT_AT(g_A, "), std::string::npos);
}

/// Regression: the first differential run of the emitted classical flavor
/// caught the thread space dropping dimension 0 -- only one point per tile
/// row was enumerated, so most of each band went uncomputed (caught as a
/// bit-level divergence by the oracle's fourth mechanism, PR 4). The
/// classical forall-threads count must cover the *full* tile volume,
/// dimension 0's width included.
TEST(HostEmitterTest, RegressionClassicalThreadSpaceCoversDim0) {
  CompiledHybrid C = compile(ir::makeJacobi2D(48, 6), 2, 4, {6});
  std::string Src = emitHost(C, EmitSchedule::Classical);
  // w0 = 4, w1 = 6: 24 points per (tile, u) row.
  EXPECT_NE(Src.find("HT_FOR_THREADS(ht_tid, 24)"), std::string::npos);
  // ... and the decomposition binds dimension 0 from the quotient.
  EXPECT_NE(Src.find("const ht_int s0 = S0 * 4 + ht_r"), std::string::npos);
}
