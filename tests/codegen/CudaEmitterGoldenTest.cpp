//===- CudaEmitterGoldenTest.cpp - Codegen drift snapshot ---------------------===//
//
// Golden-string snapshot of the emitted CUDA for one small stencil. Any
// change to the emitter, the schedule formulas or the optimization defaults
// shows up here as a full-text diff. Intended drift is re-baselined by
// copying the "actual" text from the failure output (or regenerating with
// the commented recipe below) into the literal.
//
//===----------------------------------------------------------------------===//

#include "codegen/CudaEmitter.h"
#include "codegen/HybridCompiler.h"
#include "ir/StencilGallery.h"

#include <gtest/gtest.h>

using namespace hextile;
using namespace hextile::codegen;

namespace {

/// The snapshot subject: jacobi 1D (smallest emitted text that still covers
/// both phases, the constant tables, the host loop and the full default
/// Sec. 4.2 ladder -- __shared__ staging window, cooperative load phase,
/// interleaved copy-out, 128B-aligned window base), h=1, w0=2.
std::string emitSnapshotSubject() {
  TileSizeRequest R;
  R.H = 1;
  R.W0 = 2;
  CompiledHybrid C = compileHybrid(ir::makeJacobi1D(32, 8), R);
  return emitCuda(C);
}

constexpr const char *GoldenCuda = R"golden(// jacobi1d: hybrid tiling (CUDA rendering)
// tile: h=1, w0=2, delta0=1, delta1=1
// memory strategy (Sec. 4.2 ladder): shared memory + interleaved copy-out + aligned loads + dynamic reuse
// schedule:
//   phase 0: [t, s0] -> [
//     T  = floor((t + 2) / 4)
//     p  = 0
//     S0 = floor((s0 + 4) / 8)
//     t' = ((t + 2) mod 4)
//     s0' = ((s0 + 4) mod 8)
//   ]
//   phase 1: [t, s0] -> [
//     T  = floor(t / 4)
//     p  = 1
//     S0 = floor(s0 / 8)
//     t' = (t mod 4)
//     s0' = (s0 mod 8)
//   ]

typedef long long ht_int;
#define HT_TABLE static __constant__ ht_int
#define HT_FN static __host__ __device__ __forceinline__
/// Floor division (rounds toward negative infinity, unlike C's /).
HT_FN ht_int ht_fdiv(ht_int N, ht_int D) {
  ht_int Q = N / D;
  if ((N % D) != 0 && ((N % D < 0) != (D < 0)))
    --Q;
  return Q;
}
/// Euclidean remainder: always in [0, |D|).
HT_FN ht_int ht_emod(ht_int N, ht_int D) {
  ht_int R = N % D;
  if (R < 0)
    R += (D < 0 ? -D : D);
  return R;
}
/// Exactly std::min / std::max over floats (the executor's semantics).
HT_FN float ht_minf(float A, float B) { return (B < A) ? B : A; }
HT_FN float ht_maxf(float A, float B) { return (A < B) ? B : A; }
/// Float from raw bits (non-finite constants are emitted through this).
HT_FN float ht_f32bits(unsigned int Bits) {
  union { unsigned int U; float F; } Pun;
  Pun.U = Bits;
  return Pun.F;
}

// Hexagon row b-ranges per local time a (empty rows have lo > hi).
HT_TABLE ht_row_lo[4] = {1, 0, 0, 1};
HT_TABLE ht_row_hi[4] = {3, 4, 4, 3};

__global__ void jacobi1d_phase0(float *g_A, ht_int TT, ht_int S0lo) {
  const ht_int S0 = S0lo + (ht_int)blockIdx.x;
  // Sec. 4.2 staging: per-tile 38 window per rotating copy, 128B-aligned loads.
  __shared__ float ht_s_A[76];
  const ht_int t0 = TT * 4 + (-2);
  const ht_int s0_0 = S0 * 8 - TT * (0) + (-4);
  const ht_int ht_wb0 = ht_fdiv(s0_0 + (-1), 32) * 32;
  // Cooperative load phase: global -> staging window.
  for (ht_int ht_ld = (ht_int)threadIdx.x; ht_ld < 76; ht_ld += (ht_int)blockDim.x) {
    ht_int ht_r = ht_ld;
    const ht_int ht_w0 = ht_r % 38; ht_r /= 38;
    const ht_int ht_g0 = ht_wb0 + ht_w0;
    if (ht_g0 >= 0 && ht_g0 < 32) {
      ht_s_A[ht_r * 38 + ht_w0] = g_A[ht_r * 32 + ht_g0];
    }
  }
  __syncthreads();
  for (ht_int a = 0; a < 4; ++a) {
    const ht_int t = t0 + a;
    const ht_int ht_nb = ht_row_hi[a] - ht_row_lo[a] + 1;
    if (t >= 0 && t < 8 && ht_nb > 0) {
      for (ht_int ht_tid = (ht_int)threadIdx.x; ht_tid < ht_nb; ht_tid += (ht_int)blockDim.x) {
        const ht_int s0 = s0_0 + ht_row_lo[a] + ht_tid;
        if (s0 >= 1 && s0 < 31) {
          const ht_int ht_step = t;
          // jacobi
          const float ht_v0 = ht_s_A[ht_emod(ht_step + (-1), 2) * 38 + (s0 + (-1) - ht_wb0)];
          const float ht_v1 = ht_s_A[ht_emod(ht_step + (-1), 2) * 38 + (s0 - ht_wb0)];
          const float ht_v2 = ht_s_A[ht_emod(ht_step + (-1), 2) * 38 + (s0 + (1) - ht_wb0)];
          const float ht_out = (0x1.555556p-2f * ((ht_v0 + ht_v1) + ht_v2));
          ht_s_A[ht_emod(ht_step, 2) * 38 + (s0 - ht_wb0)] = ht_out;
          g_A[ht_emod(ht_step, 2) * 32 + s0] = ht_out;
        }
      }
    }
    __syncthreads();
  }
}

__global__ void jacobi1d_phase1(float *g_A, ht_int TT, ht_int S0lo) {
  const ht_int S0 = S0lo + (ht_int)blockIdx.x;
  // Sec. 4.2 staging: per-tile 38 window per rotating copy, 128B-aligned loads.
  __shared__ float ht_s_A[76];
  const ht_int t0 = TT * 4 + (0);
  const ht_int s0_0 = S0 * 8 - TT * (0) + (0);
  const ht_int ht_wb0 = ht_fdiv(s0_0 + (-1), 32) * 32;
  // Cooperative load phase: global -> staging window.
  for (ht_int ht_ld = (ht_int)threadIdx.x; ht_ld < 76; ht_ld += (ht_int)blockDim.x) {
    ht_int ht_r = ht_ld;
    const ht_int ht_w0 = ht_r % 38; ht_r /= 38;
    const ht_int ht_g0 = ht_wb0 + ht_w0;
    if (ht_g0 >= 0 && ht_g0 < 32) {
      ht_s_A[ht_r * 38 + ht_w0] = g_A[ht_r * 32 + ht_g0];
    }
  }
  __syncthreads();
  for (ht_int a = 0; a < 4; ++a) {
    const ht_int t = t0 + a;
    const ht_int ht_nb = ht_row_hi[a] - ht_row_lo[a] + 1;
    if (t >= 0 && t < 8 && ht_nb > 0) {
      for (ht_int ht_tid = (ht_int)threadIdx.x; ht_tid < ht_nb; ht_tid += (ht_int)blockDim.x) {
        const ht_int s0 = s0_0 + ht_row_lo[a] + ht_tid;
        if (s0 >= 1 && s0 < 31) {
          const ht_int ht_step = t;
          // jacobi
          const float ht_v0 = ht_s_A[ht_emod(ht_step + (-1), 2) * 38 + (s0 + (-1) - ht_wb0)];
          const float ht_v1 = ht_s_A[ht_emod(ht_step + (-1), 2) * 38 + (s0 - ht_wb0)];
          const float ht_v2 = ht_s_A[ht_emod(ht_step + (-1), 2) * 38 + (s0 + (1) - ht_wb0)];
          const float ht_out = (0x1.555556p-2f * ((ht_v0 + ht_v1) + ht_v2));
          ht_s_A[ht_emod(ht_step, 2) * 38 + (s0 - ht_wb0)] = ht_out;
          g_A[ht_emod(ht_step, 2) * 32 + s0] = ht_out;
        }
      }
    }
    __syncthreads();
  }
}

void jacobi1d_host(float *g_A) {
  for (ht_int TT = 0; TT <= 2; ++TT) {
    if (TT >= 0 && TT <= 2) {
      const ht_int ht_s0lo = ht_fdiv(8 + TT * (0), 8);
      const ht_int ht_s0hi = ht_fdiv(34 + TT * (0), 8);
      if (ht_s0hi >= ht_s0lo) {
        jacobi1d_phase0<<<(unsigned)(ht_s0hi - ht_s0lo + 1), 8>>>(g_A, TT, ht_s0lo);
      }
    }
    if (TT >= 0 && TT <= 1) {
      const ht_int ht_s0lo = ht_fdiv(4 + TT * (0), 8);
      const ht_int ht_s0hi = ht_fdiv(30 + TT * (0), 8);
      if (ht_s0hi >= ht_s0lo) {
        jacobi1d_phase1<<<(unsigned)(ht_s0hi - ht_s0lo + 1), 8>>>(g_A, TT, ht_s0lo);
      }
    }
  }
}
)golden";

} // namespace

TEST(CudaEmitterGoldenTest, Jacobi1DSnapshotIsStable) {
  std::string Actual = emitSnapshotSubject();
  EXPECT_EQ(Actual, GoldenCuda)
      << "Emitted CUDA drifted from the golden snapshot. If the change is "
         "intended, replace the GoldenCuda literal with the actual text "
         "above.";
}

/// Emission must be deterministic: two compiles of the same program yield
/// byte-identical text (a prerequisite for golden testing at all).
TEST(CudaEmitterGoldenTest, EmissionIsDeterministic) {
  EXPECT_EQ(emitSnapshotSubject(), emitSnapshotSubject());
}
