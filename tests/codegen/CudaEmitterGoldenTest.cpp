//===- CudaEmitterGoldenTest.cpp - Codegen drift snapshot ---------------------===//
//
// Golden-string snapshot of the emitted CUDA for one small stencil. Any
// change to the emitter, the schedule formulas or the optimization defaults
// shows up here as a full-text diff. Intended drift is re-baselined by
// copying the "actual" text from the failure output (or regenerating with
// the commented recipe below) into the literal.
//
//===----------------------------------------------------------------------===//

#include "codegen/CudaEmitter.h"
#include "codegen/HybridCompiler.h"
#include "ir/StencilGallery.h"

#include <gtest/gtest.h>

using namespace hextile;
using namespace hextile::codegen;

namespace {

/// The snapshot subject: jacobi 1D (smallest emitted text that still covers
/// both phases, shared-memory staging and the host loop), h=1, w0=2,
/// default optimization config.
std::string emitSnapshotSubject() {
  TileSizeRequest R;
  R.H = 1;
  R.W0 = 2;
  CompiledHybrid C = compileHybrid(ir::makeJacobi1D(32, 8), R);
  return emitCuda(C);
}

constexpr const char *GoldenCuda = R"golden(// jacobi1d: hybrid hexagonal/classical tiling
// schedule:
//   phase 0: [t, s0] -> [
//     T  = floor((t + 2) / 4)
//     p  = 0
//     S0 = floor((s0 + 4) / 8)
//     t' = ((t + 2) mod 4)
//     s0' = ((s0 + 4) mod 8)
//   ]
//   phase 1: [t, s0] -> [
//     T  = floor(t / 4)
//     p  = 1
//     S0 = floor(s0 / 8)
//     t' = (t mod 4)
//     s0' = (s0 mod 8)
//   ]

__global__ void jacobi1d_phase0(float *g_A, int TT) {
  // Hexagonal tile: h=1, w0=2, delta0=1, delta1=1
  const int S0 = blockIdx.x;
  const int t0 = TT * 4 + (-2);
  const int s0_0 = S0 * 8 - TT * (0) + (-4);
  __shared__ float s_A[2][7];
  // inter-tile reuse: move the previous tile's overlap within shared memory (Sec. 4.2.2)
  // load phase: tile translated for 128B-aligned rows
  __syncthreads();
  for (int a = 0; a < 4; ++a) {
    const int t = t0 + a;
    if (t < 0 || t >= 8) continue;
    // full tiles: specialized, divergence-free code (Sec. 4.3.1)
    if (__tile_is_full) {
      case_a_0: // b in [1, 3], stmt jacobi
      case_a_1: // b in [0, 4], stmt jacobi
      case_a_2: // b in [0, 4], stmt jacobi
      case_a_3: // b in [1, 3], stmt jacobi
    }
    else {
      // partial tiles: generic guarded code
      // (bounds clamped against the iteration domain)
    }
    // interleaved copy-out: stores issue with the computation (Sec. 4.2.1)
    __syncthreads();
  }
}

__global__ void jacobi1d_phase1(float *g_A, int TT) {
  // Hexagonal tile: h=1, w0=2, delta0=1, delta1=1
  const int S0 = blockIdx.x;
  const int t0 = TT * 4 + (0);
  const int s0_0 = S0 * 8 - TT * (0) + (0);
  __shared__ float s_A[2][7];
  // inter-tile reuse: move the previous tile's overlap within shared memory (Sec. 4.2.2)
  // load phase: tile translated for 128B-aligned rows
  __syncthreads();
  for (int a = 0; a < 4; ++a) {
    const int t = t0 + a;
    if (t < 0 || t >= 8) continue;
    // full tiles: specialized, divergence-free code (Sec. 4.3.1)
    if (__tile_is_full) {
      case_a_0: // b in [1, 3], stmt jacobi
      case_a_1: // b in [0, 4], stmt jacobi
      case_a_2: // b in [0, 4], stmt jacobi
      case_a_3: // b in [1, 3], stmt jacobi
    }
    else {
      // partial tiles: generic guarded code
      // (bounds clamped against the iteration domain)
    }
    // interleaved copy-out: stores issue with the computation (Sec. 4.2.1)
    __syncthreads();
  }
}

void jacobi1d_host(float *g_A) {
  for (int TT = 0; TT < 3; ++TT) {
    jacobi1d_phase0<<<5, 8>>>(g_A, TT);
    jacobi1d_phase1<<<5, 8>>>(g_A, TT);
  }
}
)golden";

} // namespace

TEST(CudaEmitterGoldenTest, Jacobi1DSnapshotIsStable) {
  std::string Actual = emitSnapshotSubject();
  EXPECT_EQ(Actual, GoldenCuda)
      << "Emitted CUDA drifted from the golden snapshot. If the change is "
         "intended, replace the GoldenCuda literal with the actual text "
         "above.";
}

/// Emission must be deterministic: two compiles of the same program yield
/// byte-identical text (a prerequisite for golden testing at all).
TEST(CudaEmitterGoldenTest, EmissionIsDeterministic) {
  EXPECT_EQ(emitSnapshotSubject(), emitSnapshotSubject());
}
