//===- CoreTileCodegenTest.cpp - Fig. 2 core code tests ----------------------===//

#include "codegen/CoreTileCodegen.h"
#include "ir/StencilGallery.h"

#include <gtest/gtest.h>

using namespace hextile;
using namespace hextile::codegen;

TEST(CoreTileCodegenTest, JacobiMatchesFig2) {
  // Fig. 2: the Jacobi 2D core performs 3 shared loads and 1 shared store
  // for 5 compute instructions, with 2 values reused in registers.
  ir::StencilProgram P = ir::makeJacobi2D();
  CoreTileCode Code = emitCoreTile(P, 0, 34);
  EXPECT_EQ(Code.Stats.SharedLoads, 3u);
  EXPECT_EQ(Code.Stats.SharedStores, 1u);
  EXPECT_EQ(Code.Stats.ComputeOps, 5u);
  EXPECT_EQ(Code.Stats.RegisterReused, 2u);
  // The listing shape of Fig. 2.
  EXPECT_NE(Code.Ptx.find("ld.shared.f32"), std::string::npos);
  EXPECT_NE(Code.Ptx.find("st.shared.f32"), std::string::npos);
  EXPECT_NE(Code.Ptx.find("mul.f32"), std::string::npos);
  EXPECT_NE(Code.Ptx.find("add.f32"), std::string::npos);
}

TEST(CoreTileCodegenTest, WithoutReuseAllReadsLoad) {
  ir::StencilProgram P = ir::makeJacobi2D();
  CoreTileCode Code = emitCoreTile(P, 0, 34, /*EnableRegisterReuse=*/false);
  EXPECT_EQ(Code.Stats.SharedLoads, 5u);
  EXPECT_EQ(Code.Stats.RegisterReused, 0u);
  EXPECT_EQ(Code.Stats.ComputeOps, 5u);
}

TEST(CoreTileCodegenTest, Heat3DGroupsToNineLoads) {
  ir::StencilProgram P = ir::makeHeat3D();
  CoreTileCode Code = emitCoreTile(P, 0, 34);
  EXPECT_EQ(Code.Stats.SharedLoads, 9u);
  EXPECT_EQ(Code.Stats.RegisterReused, 18u);
  EXPECT_EQ(Code.Stats.ComputeOps, 27u);
}

TEST(CoreTileCodegenTest, FdtdPerStatement) {
  ir::StencilProgram P = ir::makeFdtd2D();
  // ey: reads ey(0,0), hz(0,0), hz(-1,0): the hz pair differs only in its
  // s0 offset, so the sliding window serves hz(-1,0) from a register:
  // 2 loads, 1 reuse.
  CoreTileCode Ey = emitCoreTile(P, 0, 34);
  EXPECT_EQ(Ey.Stats.SharedLoads, 2u);
  EXPECT_EQ(Ey.Stats.RegisterReused, 1u);
  EXPECT_EQ(Ey.Stats.ComputeOps, 3u);
  // hz: reads hz(0,0), ex(0,1), ex(0,0), ey(1,0), ey(0,0):
  // ex pair differs in s1 -> 2 loads; ey pair differs in s0 -> 1 load + 1
  // reuse; plus hz: 4 loads, 1 reused.
  CoreTileCode Hz = emitCoreTile(P, 2, 34);
  EXPECT_EQ(Hz.Stats.SharedLoads, 4u);
  EXPECT_EQ(Hz.Stats.RegisterReused, 1u);
}

TEST(CoreTileCodegenTest, ConstantsRenderAsHexFloats) {
  ir::StencilProgram P = ir::makeJacobi2D();
  CoreTileCode Code = emitCoreTile(P, 0, 34);
  // 0.2f = 0x3E4CCCCD, as in Fig. 2's "mul.f32 %f368, %f367, 0f3E4CCCCD".
  EXPECT_NE(Code.Ptx.find("3E4CCCCD"), std::string::npos);
}
