//===- BaselinesTest.cpp - Baseline model tests --------------------------------===//

#include "baselines/Baselines.h"
#include "baselines/DiamondTiling.h"
#include "core/HexagonGeometry.h"
#include "exec/Executor.h"
#include "ir/StencilGallery.h"

#include <gtest/gtest.h>

using namespace hextile;
using namespace hextile::baselines;

TEST(BaselinesTest, PpcgProducesPerStatementKernels) {
  gpu::DeviceConfig Dev = gpu::DeviceConfig::gtx470();
  BaselineResult R = compilePpcg(ir::makeFdtd2D(256, 16), Dev);
  EXPECT_EQ(R.Kernels.size(), 3u);
  for (const gpu::KernelModel &K : R.Kernels) {
    EXPECT_EQ(K.Launches, 16);
    EXPECT_FALSE(K.OverlapCopyOut); // Separate staging phases.
    EXPECT_GT(K.SharedLoadsPerSlab, 0);
  }
}

TEST(BaselinesTest, PpcgScheduleIsFunctionallyCorrect) {
  ir::StencilProgram P = ir::makeJacobi2D(16, 5);
  gpu::DeviceConfig Dev = gpu::DeviceConfig::gtx470();
  BaselineResult R = compilePpcg(P, Dev);
  ASSERT_TRUE(R.Key);
  EXPECT_EQ(exec::checkScheduleEquivalence(P, R.Key), "");
}

TEST(BaselinesTest, Par4allRejectsFdtd) {
  // The paper reports "invalid CUDA" for Par4All on fdtd-2d.
  gpu::DeviceConfig Dev = gpu::DeviceConfig::gtx470();
  BaselineResult R = compilePar4all(ir::makeFdtd2D(256, 16), Dev);
  EXPECT_TRUE(R.Kernels.empty());
  EXPECT_EQ(R.TuningNote, "invalid CUDA");
}

TEST(BaselinesTest, Par4allHandlesSingleStatement) {
  gpu::DeviceConfig Dev = gpu::DeviceConfig::gtx470();
  BaselineResult R = compilePar4all(ir::makeGradient2D(256, 16), Dev);
  ASSERT_EQ(R.Kernels.size(), 1u);
  EXPECT_EQ(R.Kernels[0].SharedBytesPerBlock, 0); // No staging.
  EXPECT_EQ(R.Kernels[0].SharedLoadsPerSlab, 0);
  EXPECT_FALSE(R.Kernels[0].LoadDistinctRows.empty());
  ASSERT_TRUE(R.Key);
  EXPECT_EQ(exec::checkScheduleEquivalence(
                ir::makeGradient2D(12, 4), R.Key),
            "");
}

TEST(BaselinesTest, OvertileAutotunesTimeTilingFor2D) {
  gpu::DeviceConfig Dev = gpu::DeviceConfig::gtx470();
  BaselineResult R = compileOvertile(ir::makeLaplacian2D(3072, 512), Dev);
  ASSERT_FALSE(R.Kernels.empty());
  // Sec. 6.1: Overtile exploits time tiling on 2D kernels...
  EXPECT_EQ(R.TuningNote.find("hT=1,"), std::string::npos)
      << R.TuningNote;
}

TEST(BaselinesTest, OvertileFallsBackToSpaceTilingFor3D) {
  // ...but falls back to space tiling for 3D kernels (redundant halo
  // computation grows cubically).
  gpu::DeviceConfig Dev = gpu::DeviceConfig::gtx470();
  BaselineResult R = compileOvertile(ir::makeHeat3D(384, 128), Dev);
  ASSERT_FALSE(R.Kernels.empty());
  EXPECT_NE(R.TuningNote.find("hT=1,"), std::string::npos)
      << R.TuningNote;
}

TEST(BaselinesTest, OvertileRedundancyAccounting) {
  // With time tiling, computed flops must exceed the useful minimum.
  gpu::DeviceConfig Dev = gpu::DeviceConfig::gtx470();
  BaselineResult R = compileOvertile(ir::makeJacobi2D(3072, 512), Dev);
  const gpu::KernelModel &K = R.Kernels[0];
  int64_t UsefulFlops = K.UpdatesPerSlab * 5;
  EXPECT_GT(K.FlopsPerSlab, UsefulFlops);
}

TEST(DiamondTilingTest, PointCountVariesForOddPeriods) {
  // Sec. 2: diamond tiles may contain different numbers of integer points.
  DiamondTiling D(5);
  int64_t Min, Max;
  D.countRange(3, Min, Max);
  EXPECT_LT(Min, Max);
  EXPECT_EQ(Min + Max, 25); // ceil + floor of P^2/2.
}

TEST(DiamondTilingTest, PointCountConstantForEvenPeriods) {
  DiamondTiling D(6);
  int64_t Min, Max;
  D.countRange(3, Min, Max);
  EXPECT_EQ(Min, Max);
  EXPECT_EQ(Min, 18); // P^2/2.
}

TEST(DiamondTilingTest, HexagonalTilesAreAlwaysConstant) {
  // The contrast claimed in Sec. 2: every full hexagonal tile has the same
  // cardinality, for any parameters.
  for (int64_t H : {1, 2, 3})
    for (int64_t W0 : {1, 3, 5}) {
      core::HexagonGeometry G(
          core::HexTileParams(H, W0, Rational(1), Rational(1)));
      EXPECT_GT(G.pointsPerTile(), 0);
      // pointsPerTile is a single number by construction -- the shape is
      // translation-invariant, unlike the diamond lattice cells.
    }
}

TEST(DiamondTilingTest, LocateIsConsistentWithCounts) {
  DiamondTiling D(4);
  // Count points mapping to tile (0, 0) by brute force.
  int64_t N = 0;
  for (int64_t T = -10; T <= 10; ++T)
    for (int64_t S = -10; S <= 10; ++S) {
      int64_t A, B;
      D.locate(T, S, A, B);
      if (A == 0 && B == 0)
        ++N;
    }
  EXPECT_EQ(N, D.pointCount(0, 0));
}
