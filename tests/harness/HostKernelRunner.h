//===- HostKernelRunner.h - JIT harness for emitted host kernels -*- C++ -*-===//
//
// Part of the hextile project (CGO'14 hybrid hexagonal tiling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The test-time JIT behind the oracle's fourth mechanism: takes the C++
/// translation unit HostEmitter produces, writes it (next to cuda_shim.h)
/// into a fresh scratch directory, compiles it with the system C++
/// compiler into a shared object, dlopens the result and drives the
/// emitted `<name>_run` entry point over GridStorage-layout rotating
/// buffers. runEmittedDifferential then compares the final fields
/// bit-exactly against the naive reference executor -- so every loop
/// bound, guard, skew table and buffer index the emitter produces is
/// *executed*, not just snapshot-compared.
///
/// Machines without a usable compiler skip cleanly: available() is false,
/// runEmittedDifferential reports Skipped and runs nothing. On a mismatch
/// the scratch directory (kernel.cpp, cuda_shim.h, compile log, .so) is
/// kept and named in the diagnostic so a failing seed reproduces offline:
///   c++ -std=c++17 -O1 -fPIC -shared -o kernel.so kernel.cpp
/// When the harness itself is an AddressSanitizer build
/// (HEXTILE_SANITIZE=address), the JIT compile adds -fsanitize=address so
/// the emitted kernels run shadow-checked too.
///
//===----------------------------------------------------------------------===//

#ifndef HEXTILE_TESTS_HARNESS_HOSTKERNELRUNNER_H
#define HEXTILE_TESTS_HARNESS_HOSTKERNELRUNNER_H

#include "codegen/HostEmitter.h"
#include "codegen/HybridCompiler.h"
#include "exec/FieldStorage.h"
#include "ir/StencilProgram.h"

#include <string>

namespace hextile {
namespace harness {

/// One compiled-and-loaded emitted translation unit. Owns the scratch
/// directory and the dlopen handle; both are released on destruction
/// unless keepArtifacts() was called.
class JitUnit {
public:
  JitUnit() = default;
  ~JitUnit();
  JitUnit(const JitUnit &) = delete;
  JitUnit &operator=(const JitUnit &) = delete;

  /// The discovered system C++ compiler ($CXX, c++, g++ or clang++;
  /// empty when none works). Cached across calls.
  static const std::string &systemCompiler();
  /// True when a system compiler is available, i.e. emitted kernels can
  /// actually be built and run on this machine.
  static bool available() { return !systemCompiler().empty(); }

  /// Writes \p Source as kernel.cpp (with cuda_shim.h beside it),
  /// compiles it into kernel.so and loads it. Returns an empty string on
  /// success, else a diagnostic including the compiler output. Asserts
  /// that available() held and that no unit was built before.
  std::string build(const std::string &Source);

  /// Looks up \p Name in the loaded unit (null when absent or not built).
  void *symbol(const std::string &Name) const;

  /// Scratch directory holding kernel.cpp / cuda_shim.h / kernel.so.
  const std::string &workDir() const { return Dir; }
  /// Keeps the scratch directory on destruction (failure forensics).
  void keepArtifacts() { Keep = true; }

private:
  std::string Dir;
  void *Handle = nullptr;
  bool Keep = false;
};

/// Outcome of one emitted-kernel differential run.
struct EmittedDiff {
  /// True when nothing ran because no system compiler is available.
  bool Skipped = false;
  /// Empty on bit-exact agreement (or skip); else the full diagnostic
  /// (program, flavor, seed context, first mismatch, kept artifact dir).
  std::string Message;

  bool agreed() const { return Message.empty(); }
};

/// Runs \p P through the naive reference executor and through the
/// compiled-and-executed HostEmitter rendering of \p C as flavor \p S
/// (both over buffers initialized by \p Init), comparing the final fields
/// bit for bit. \p Context is prefixed to any diagnostic (the oracle puts
/// the tiling/seed there so failures reproduce from the log alone).
EmittedDiff runEmittedDifferential(const ir::StencilProgram &P,
                                   const codegen::CompiledHybrid &C,
                                   codegen::EmitSchedule S,
                                   const exec::Initializer &Init,
                                   const std::string &Context = "");

} // namespace harness
} // namespace hextile

#endif // HEXTILE_TESTS_HARNESS_HOSTKERNELRUNNER_H
