//===- HostKernelRunner.h - JIT harness for emitted host kernels -*- C++ -*-===//
//
// Part of the hextile project (CGO'14 hybrid hexagonal tiling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The test-time JIT behind the oracle's fourth mechanism: takes the C++
/// translation unit HostEmitter produces, compiles it with the system C++
/// compiler into a shared object, dlopens the result and drives the
/// emitted `<name>_run` entry point over GridStorage-layout rotating
/// buffers. runEmittedDifferential then compares the final fields
/// bit-exactly against the naive reference executor -- so every loop
/// bound, guard, skew table and buffer index the emitter produces is
/// *executed*, not just snapshot-compared.
///
/// The compile/load core (JitUnit) now lives in src/service -- it doubles
/// as the compile backend of service::CompileService -- and is re-exported
/// here under its historical harness name. This header adds the
/// differential drivers on top: runEmittedDifferential (emit + build +
/// run + compare in one call) and runEntryDifferential (compare an
/// already-loaded entry point, e.g. an artifact served by the compile
/// service, against the reference executor).
///
/// Machines without a usable compiler skip cleanly: available() is false,
/// runEmittedDifferential reports Skipped and runs nothing. On a mismatch
/// the scratch directory (kernel.cpp, cuda_shim.h, compile log, .so) is
/// kept and named in the diagnostic so a failing seed reproduces offline:
///   c++ -std=c++17 -O1 -fPIC -shared -pthread -o kernel.so kernel.cpp
/// When the harness itself is a sanitizer build, the JIT compile matches
/// it: -fsanitize=address under HEXTILE_SANITIZE=address (the emitted
/// kernels run shadow-checked), -fsanitize=thread under
/// HEXTILE_SANITIZE=thread (the parallel shim's worker teams and barriers
/// are raced under TSan).
///
/// EmittedUnit is the multi-run form: build once, differential-run many
/// times -- the parallel shim-thread sweep replays one compiled unit at
/// several HT_SHIM_THREADS environment overrides instead of paying one
/// JIT compile per thread count.
///
//===----------------------------------------------------------------------===//

#ifndef HEXTILE_TESTS_HARNESS_HOSTKERNELRUNNER_H
#define HEXTILE_TESTS_HARNESS_HOSTKERNELRUNNER_H

#include "codegen/HostEmitter.h"
#include "codegen/HybridCompiler.h"
#include "exec/FieldStorage.h"
#include "ir/StencilProgram.h"
#include "service/JitUnit.h"

#include <string>

namespace hextile {
namespace harness {

/// Historical name of the JIT compile/load core, now the service's
/// compile backend (see service/JitUnit.h for the full contract).
using JitUnit = service::JitUnit;

/// Outcome of one emitted-kernel differential run.
struct EmittedDiff {
  /// True when nothing ran because no system compiler is available.
  bool Skipped = false;
  /// Empty on bit-exact agreement (or skip); else the full diagnostic
  /// (program, flavor, seed context, first mismatch, kept artifact dir).
  std::string Message;

  bool agreed() const { return Message.empty(); }
};

/// Runs \p P through the naive reference executor and through the
/// compiled-and-executed HostEmitter rendering of \p C as flavor \p S
/// (both over buffers initialized by \p Init), comparing the final fields
/// bit for bit. \p Context is prefixed to any diagnostic (the oracle puts
/// the tiling/seed there so failures reproduce from the log alone).
EmittedDiff runEmittedDifferential(const ir::StencilProgram &P,
                                   const codegen::CompiledHybrid &C,
                                   codegen::EmitSchedule S,
                                   const exec::Initializer &Init,
                                   const std::string &Context = "");

/// Differential-tests an already-compiled entry point (signature
/// `void(float **)`, GridStorage layout) for \p P against the naive
/// reference executor -- the check the service stress tests apply to
/// cached/deduped artifacts without paying for a second JIT build.
/// Returns "" on bit-exact agreement, else a diagnostic prefixed with
/// \p Context.
std::string runEntryDifferential(const ir::StencilProgram &P,
                                 void (*Entry)(float **),
                                 const exec::Initializer &Init,
                                 const std::string &Context = "");

/// A JIT-built emitted unit that can be differential-run repeatedly.
/// Parallel units (Config.ShimThreads > 0) re-read the HT_SHIM_THREADS /
/// HT_SHIM_TEAMS environment at every launch, so one compiled unit can be
/// raced at several pool geometries; runDifferential sets the override
/// for the duration of one run.
class EmittedUnit {
public:
  /// Emits \p C as flavor \p S and JIT-builds it. Returns "" on success,
  /// "skip" reason or compile diagnostic otherwise; Skipped distinguishes
  /// the no-compiler case.
  std::string build(const ir::StencilProgram &P,
                    const codegen::CompiledHybrid &C, codegen::EmitSchedule S);
  bool skipped() const { return Skipped; }

  /// One differential run against the naive reference executor.
  /// \p ShimThreads > 0 exports HT_SHIM_THREADS for this run (the
  /// parallel pool re-shapes to that team size); 0 leaves the unit's
  /// baked-in default. Returns "" on bit-exact agreement; on mismatch the
  /// scratch directory is kept and named.
  std::string runDifferential(const exec::Initializer &Init,
                              const std::string &Context,
                              int ShimThreads = 0);

private:
  JitUnit Unit;
  ir::StencilProgram Program;
  void (*Entry)(float **) = nullptr;
  bool Skipped = false;
};

} // namespace harness
} // namespace hextile

#endif // HEXTILE_TESTS_HARNESS_HOSTKERNELRUNNER_H
