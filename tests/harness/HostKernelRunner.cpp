//===- HostKernelRunner.cpp - JIT harness for emitted host kernels --------===//

#include "harness/HostKernelRunner.h"

#include "exec/Executor.h"
#include "exec/GridStorage.h"

#include <cassert>
#include <cstdlib>
#include <dlfcn.h>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <sys/wait.h>
#include <vector>

using namespace hextile;
using namespace hextile::harness;

// When the harness itself runs under AddressSanitizer, build the JIT
// units with ASan too: the emitted kernels (staging windows included) are
// then memory-checked with shadow tracking, not just by the shim's HT_AT
// range trap, and the instrumented .so loads cleanly into the
// instrumented process.
#if defined(__SANITIZE_ADDRESS__)
#define HEXTILE_JIT_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define HEXTILE_JIT_ASAN 1
#endif
#endif
#ifndef HEXTILE_JIT_ASAN
#define HEXTILE_JIT_ASAN 0
#endif

namespace {

/// Runs a shell command, returning its exit code (-1 on spawn failure).
int runCommand(const std::string &Cmd) {
  int Status = std::system(Cmd.c_str());
  if (Status == -1)
    return -1;
  if (WIFEXITED(Status))
    return WEXITSTATUS(Status);
  return -1;
}

/// Single-quotes \p S for the shell, so paths (and $CXX values) with
/// spaces or metacharacters pass through std::system verbatim.
std::string shellQuote(const std::string &S) {
  std::string Q = "'";
  for (char C : S) {
    if (C == '\'')
      Q += "'\\''";
    else
      Q += C;
  }
  Q += "'";
  return Q;
}

std::string discoverCompiler() {
  std::vector<std::string> Candidates;
  if (const char *Env = std::getenv("CXX"); Env && *Env)
    Candidates.push_back(Env);
  Candidates.insert(Candidates.end(), {"c++", "g++", "clang++"});
  for (const std::string &C : Candidates)
    if (runCommand(shellQuote(C) + " --version > /dev/null 2>&1") == 0)
      return C;
  return "";
}

std::string readFile(const std::filesystem::path &P) {
  std::ifstream In(P);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

} // namespace

const std::string &JitUnit::systemCompiler() {
  static const std::string Compiler = discoverCompiler();
  return Compiler;
}

JitUnit::~JitUnit() {
  if (Handle)
    dlclose(Handle);
  if (!Dir.empty() && !Keep) {
    std::error_code EC;
    std::filesystem::remove_all(Dir, EC); // Best effort.
  }
}

std::string JitUnit::build(const std::string &Source) {
  assert(available() && "no system compiler; check available() first");
  assert(Dir.empty() && "JitUnit::build is single-shot");

  std::filesystem::path Base = std::filesystem::temp_directory_path();
  std::string Templ = (Base / "hextile-jit-XXXXXX").string();
  if (!mkdtemp(Templ.data()))
    return "cannot create scratch directory under " + Base.string();
  Dir = Templ;

  std::filesystem::path Shim = std::filesystem::path(Dir) / "cuda_shim.h";
  std::filesystem::path Src = std::filesystem::path(Dir) / "kernel.cpp";
  std::filesystem::path Lib = std::filesystem::path(Dir) / "kernel.so";
  std::filesystem::path Log = std::filesystem::path(Dir) / "compile.log";
  {
    std::ofstream(Shim) << codegen::hostShimSource();
    std::ofstream(Src) << Source;
  }

  std::string Cmd = shellQuote(systemCompiler()) +
                    " -std=c++17 -O1 -fPIC -shared" +
                    (HEXTILE_JIT_ASAN ? " -fsanitize=address" : "") +
                    " -o " + shellQuote(Lib.string()) + " " +
                    shellQuote(Src.string()) + " > " +
                    shellQuote(Log.string()) + " 2>&1";
  if (runCommand(Cmd) != 0) {
    Keep = true;
    return "emitted unit failed to compile (artifacts kept in " + Dir +
           "):\n" + readFile(Log);
  }

  Handle = dlopen(Lib.string().c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!Handle) {
    Keep = true;
    const char *Err = dlerror();
    return "emitted unit failed to load (artifacts kept in " + Dir +
           "): " + (Err ? Err : "unknown dlopen error");
  }
  return "";
}

void *JitUnit::symbol(const std::string &Name) const {
  if (!Handle)
    return nullptr;
  return dlsym(Handle, Name.c_str());
}

namespace {

/// FieldStorage view over the flat rotating buffers the emitted entry
/// point ran on (GridStorage layout), so the oracle's bit-exact
/// compareStoragesAtStep works unchanged.
class FlatBufferStorage final : public exec::FieldStorage {
public:
  FlatBufferStorage(const ir::StencilProgram &P,
                    const exec::Initializer &Init)
      : Extents(P.spaceSizes()) {
    PointsPerCopy = 1;
    for (int64_t S : Extents)
      PointsPerCopy *= S;
    Buffers.resize(P.fields().size());
    Depths.resize(P.fields().size());
    for (unsigned F = 0; F < P.fields().size(); ++F) {
      Depths[F] = P.bufferDepth(F);
      Buffers[F].resize(static_cast<size_t>(Depths[F]) * PointsPerCopy);
    }
    // Same contract as GridStorage: every rotating copy starts from the
    // same per-point initial value (boundary cells included).
    std::vector<int64_t> Coords(Extents.size(), 0);
    std::function<void(unsigned)> Fill = [&](unsigned Dim) {
      if (Dim == Extents.size()) {
        for (unsigned F = 0; F < Buffers.size(); ++F) {
          float V = Init(F, Coords);
          for (unsigned D = 0; D < Depths[F]; ++D)
            Buffers[F][D * PointsPerCopy + linear(Coords)] = V;
        }
        return;
      }
      for (int64_t I = 0; I < Extents[Dim]; ++I) {
        Coords[Dim] = I;
        Fill(Dim + 1);
      }
    };
    Fill(0);
  }

  /// The per-field base pointers the emitted entry point consumes.
  std::vector<float *> fieldPointers() {
    std::vector<float *> Ptrs;
    for (std::vector<float> &B : Buffers)
      Ptrs.push_back(B.data());
    return Ptrs;
  }

  const char *kind() const override { return "jit-flat"; }
  unsigned numFields() const override { return Buffers.size(); }
  unsigned depth(unsigned Field) const override { return Depths[Field]; }
  const std::vector<int64_t> &sizes() const override { return Extents; }
  float read(unsigned Field, int64_t T,
             std::span<const int64_t> Coords) const override {
    return Buffers[Field][euclidMod(T, Depths[Field]) * PointsPerCopy +
                          linear(Coords)];
  }
  void write(unsigned Field, int64_t T, std::span<const int64_t> Coords,
             float V) override {
    Buffers[Field][euclidMod(T, Depths[Field]) * PointsPerCopy +
                   linear(Coords)] = V;
  }

private:
  int64_t linear(std::span<const int64_t> Coords) const {
    int64_t L = 0;
    for (unsigned D = 0; D < Extents.size(); ++D)
      L = L * Extents[D] + Coords[D];
    return L;
  }

  std::vector<int64_t> Extents;
  int64_t PointsPerCopy = 0;
  std::vector<unsigned> Depths;
  std::vector<std::vector<float>> Buffers;
};

} // namespace

EmittedDiff harness::runEmittedDifferential(const ir::StencilProgram &P,
                                            const codegen::CompiledHybrid &C,
                                            codegen::EmitSchedule S,
                                            const exec::Initializer &Init,
                                            const std::string &Context) {
  EmittedDiff Result;
  if (!JitUnit::available()) {
    Result.Skipped = true;
    return Result;
  }

  std::string Prefix = "[emitted " +
                       std::string(codegen::emitScheduleName(S)) +
                       "] program=" + P.name() +
                       (Context.empty() ? "" : " " + Context);

  JitUnit Unit;
  if (std::string Err = Unit.build(codegen::emitHost(C, S)); !Err.empty()) {
    Result.Message = Prefix + ": " + Err;
    return Result;
  }
  using EntryFn = void (*)(float **);
  EntryFn Entry = reinterpret_cast<EntryFn>(
      Unit.symbol(codegen::hostEntryName(P)));
  if (!Entry) {
    Unit.keepArtifacts();
    Result.Message = Prefix + ": entry point " + codegen::hostEntryName(P) +
                     " missing from the emitted unit (artifacts kept in " +
                     Unit.workDir() + ")";
    return Result;
  }

  exec::GridStorage Ref(P, Init);
  exec::runReference(P, Ref);

  FlatBufferStorage Got(P, Init);
  std::vector<float *> Ptrs = Got.fieldPointers();
  Entry(Ptrs.data());

  std::string Diff =
      exec::compareStoragesAtStep(Ref, Got, P.timeSteps() - 1);
  if (!Diff.empty()) {
    Unit.keepArtifacts();
    Result.Message = Prefix +
                     " diverges from the row-major reference: " + Diff +
                     " (emitted sources kept in " + Unit.workDir() + ")";
  }
  return Result;
}
