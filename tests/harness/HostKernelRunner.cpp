//===- HostKernelRunner.cpp - JIT harness for emitted host kernels --------===//

#include "harness/HostKernelRunner.h"

#include "exec/Executor.h"
#include "exec/GridStorage.h"

#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

using namespace hextile;
using namespace hextile::harness;

namespace {

/// FieldStorage view over the flat rotating buffers the emitted entry
/// point ran on (GridStorage layout), so the oracle's bit-exact
/// compareStoragesAtStep works unchanged.
class FlatBufferStorage final : public exec::FieldStorage {
public:
  FlatBufferStorage(const ir::StencilProgram &P,
                    const exec::Initializer &Init)
      : Extents(P.spaceSizes()) {
    PointsPerCopy = 1;
    for (int64_t S : Extents)
      PointsPerCopy *= S;
    Buffers.resize(P.fields().size());
    Depths.resize(P.fields().size());
    for (unsigned F = 0; F < P.fields().size(); ++F) {
      Depths[F] = P.bufferDepth(F);
      Buffers[F].resize(static_cast<size_t>(Depths[F]) * PointsPerCopy);
    }
    // Same contract as GridStorage: every rotating copy starts from the
    // same per-point initial value (boundary cells included).
    std::vector<int64_t> Coords(Extents.size(), 0);
    std::function<void(unsigned)> Fill = [&](unsigned Dim) {
      if (Dim == Extents.size()) {
        for (unsigned F = 0; F < Buffers.size(); ++F) {
          float V = Init(F, Coords);
          for (unsigned D = 0; D < Depths[F]; ++D)
            Buffers[F][D * PointsPerCopy + linear(Coords)] = V;
        }
        return;
      }
      for (int64_t I = 0; I < Extents[Dim]; ++I) {
        Coords[Dim] = I;
        Fill(Dim + 1);
      }
    };
    Fill(0);
  }

  /// The per-field base pointers the emitted entry point consumes.
  std::vector<float *> fieldPointers() {
    std::vector<float *> Ptrs;
    for (std::vector<float> &B : Buffers)
      Ptrs.push_back(B.data());
    return Ptrs;
  }

  const char *kind() const override { return "jit-flat"; }
  unsigned numFields() const override { return Buffers.size(); }
  unsigned depth(unsigned Field) const override { return Depths[Field]; }
  const std::vector<int64_t> &sizes() const override { return Extents; }
  float read(unsigned Field, int64_t T,
             std::span<const int64_t> Coords) const override {
    return Buffers[Field][euclidMod(T, Depths[Field]) * PointsPerCopy +
                          linear(Coords)];
  }
  void write(unsigned Field, int64_t T, std::span<const int64_t> Coords,
             float V) override {
    Buffers[Field][euclidMod(T, Depths[Field]) * PointsPerCopy +
                   linear(Coords)] = V;
  }

private:
  int64_t linear(std::span<const int64_t> Coords) const {
    int64_t L = 0;
    for (unsigned D = 0; D < Extents.size(); ++D)
      L = L * Extents[D] + Coords[D];
    return L;
  }

  std::vector<int64_t> Extents;
  int64_t PointsPerCopy = 0;
  std::vector<unsigned> Depths;
  std::vector<std::vector<float>> Buffers;
};

/// Scoped environment override, restoring the previous value (or the
/// unset state) on destruction.
class EnvGuard {
public:
  EnvGuard(const char *Name, const std::string &Value) : Name(Name) {
    if (const char *Old = getenv(Name)) {
      HadOld = true;
      OldValue = Old;
    }
    setenv(Name, Value.c_str(), 1);
  }
  ~EnvGuard() {
    if (HadOld)
      setenv(Name, OldValue.c_str(), 1);
    else
      unsetenv(Name);
  }

private:
  const char *Name;
  bool HadOld = false;
  std::string OldValue;
};

} // namespace

std::string harness::runEntryDifferential(const ir::StencilProgram &P,
                                          void (*Entry)(float **),
                                          const exec::Initializer &Init,
                                          const std::string &Context) {
  exec::GridStorage Ref(P, Init);
  exec::runReference(P, Ref);

  FlatBufferStorage Got(P, Init);
  std::vector<float *> Ptrs = Got.fieldPointers();
  Entry(Ptrs.data());

  std::string Diff =
      exec::compareStoragesAtStep(Ref, Got, P.timeSteps() - 1);
  if (Diff.empty())
    return "";
  return (Context.empty() ? "" : Context + ": ") +
         "emitted entry diverges from the row-major reference: " + Diff;
}

EmittedDiff harness::runEmittedDifferential(const ir::StencilProgram &P,
                                            const codegen::CompiledHybrid &C,
                                            codegen::EmitSchedule S,
                                            const exec::Initializer &Init,
                                            const std::string &Context) {
  EmittedDiff Result;
  if (!JitUnit::available()) {
    Result.Skipped = true;
    return Result;
  }

  std::string Prefix = "[emitted " +
                       std::string(codegen::emitScheduleName(S)) +
                       "] program=" + P.name() +
                       (Context.empty() ? "" : " " + Context);

  JitUnit Unit;
  if (std::string Err = Unit.build(codegen::emitHost(C, S)); !Err.empty()) {
    Result.Message = Prefix + ": " + Err;
    return Result;
  }
  using EntryFn = void (*)(float **);
  EntryFn Entry = reinterpret_cast<EntryFn>(
      Unit.symbol(codegen::hostEntryName(P)));
  if (!Entry) {
    Unit.keepArtifacts();
    Result.Message = Prefix + ": entry point " + codegen::hostEntryName(P) +
                     " missing from the emitted unit (artifacts kept in " +
                     Unit.workDir() + ")";
    return Result;
  }

  std::string Diff = runEntryDifferential(P, Entry, Init, "");
  if (!Diff.empty()) {
    Unit.keepArtifacts();
    Result.Message = Prefix + " " + Diff +
                     " (emitted sources kept in " + Unit.workDir() + ")";
  }
  return Result;
}

std::string harness::EmittedUnit::build(const ir::StencilProgram &P,
                                        const codegen::CompiledHybrid &C,
                                        codegen::EmitSchedule S) {
  Program = P;
  if (!JitUnit::available()) {
    Skipped = true;
    return "no system C++ compiler";
  }
  if (std::string Err = Unit.build(codegen::emitHost(C, S)); !Err.empty())
    return "[emitted " + std::string(codegen::emitScheduleName(S)) +
           "] program=" + P.name() + ": " + Err;
  Entry = reinterpret_cast<void (*)(float **)>(
      Unit.symbol(codegen::hostEntryName(P)));
  if (!Entry) {
    Unit.keepArtifacts();
    return "entry point " + codegen::hostEntryName(P) +
           " missing from the emitted unit (artifacts kept in " +
           Unit.workDir() + ")";
  }
  return "";
}

std::string harness::EmittedUnit::runDifferential(
    const exec::Initializer &Init, const std::string &Context,
    int ShimThreads) {
  if (Skipped || !Entry)
    return "EmittedUnit::build did not produce a runnable entry";
  std::string Diff;
  if (ShimThreads > 0) {
    EnvGuard Guard("HT_SHIM_THREADS", std::to_string(ShimThreads));
    Diff = runEntryDifferential(Program, Entry, Init, Context);
  } else {
    Diff = runEntryDifferential(Program, Entry, Init, Context);
  }
  if (!Diff.empty()) {
    Unit.keepArtifacts();
    Diff += " (emitted sources kept in " + Unit.workDir() + ")";
  }
  return Diff;
}
