//===- StencilOracle.cpp - Differential-testing oracle --------------------===//

#include "harness/StencilOracle.h"

#include "baselines/DiamondTiling.h"
#include "codegen/HybridCompiler.h"
#include "core/ClassicalTiling.h"
#include "harness/HostKernelRunner.h"
#include "core/HexSchedule.h"
#include "core/HybridSchedule.h"
#include "core/IterationDomain.h"
#include "deps/DeltaBounds.h"
#include "deps/DependenceAnalysis.h"
#include "exec/GridStorage.h"
#include "exec/OverlappedReplay.h"

#include <algorithm>
#include <memory>
#include <sstream>

using namespace hextile;
using namespace hextile::harness;

const char *harness::scheduleKindName(ScheduleKind K) {
  switch (K) {
  case ScheduleKind::Hex:
    return "hex";
  case ScheduleKind::Hybrid:
    return "hybrid";
  case ScheduleKind::Classical:
    return "classical";
  case ScheduleKind::Diamond:
    return "diamond";
  case ScheduleKind::Overlapped:
    return "overlapped";
  }
  return "?";
}

std::vector<ScheduleKind> harness::allScheduleKinds() {
  return {ScheduleKind::Hex, ScheduleKind::Hybrid, ScheduleKind::Classical,
          ScheduleKind::Diamond, ScheduleKind::Overlapped};
}

std::string OracleTiling::str() const {
  std::ostringstream OS;
  OS << "h=" << H << " w0=" << W0 << " inner=[";
  for (size_t I = 0; I < InnerWidths.size(); ++I)
    OS << (I ? "," : "") << InnerWidths[I];
  OS << "] diamondP=" << DiamondPeriod;
  return OS.str();
}

namespace {

uint64_t mix64(uint64_t X) {
  X ^= X >> 33;
  X *= 0xff51afd7ed558ccdull;
  X ^= X >> 33;
  X *= 0xc4ceb9fe1a85ec53ull;
  X ^= X >> 33;
  return X;
}

/// Seeded hash of a block index; replaces the index in the schedule key so
/// parallel blocks replay in a pseudo-random serialization. Hash collisions
/// merely tie two blocks, which the executor then interleaves -- also a
/// legal linearization of parallel blocks.
int64_t permuteBlock(uint64_t Seed, int64_t Block) {
  if (Seed == 0)
    return Block;
  return static_cast<int64_t>(
      mix64(Seed ^ static_cast<uint64_t>(Block)) >> 1);
}

/// Classical widths for spatial dimensions 1..rank-1, extending the
/// requested list with its last entry (or 4) when too short.
std::vector<int64_t> innerWidthsFor(const OracleTiling &T, unsigned Rank) {
  std::vector<int64_t> W = T.InnerWidths;
  while (W.size() + 1 < Rank)
    W.push_back(W.empty() ? 4 : W.back());
  if (Rank >= 1)
    W.resize(Rank - 1);
  for (int64_t &X : W)
    X = std::max<int64_t>(X, 1);
  return W;
}

core::HexTileParams legalizedHexParams(const OracleTiling &T,
                                       const Rational &D0,
                                       const Rational &D1) {
  int64_t H = std::max<int64_t>(T.H, 1);
  int64_t W0 = std::max<int64_t>(T.W0, 1);
  W0 = std::max(W0, core::HexTileParams::minWidth(D0, D1, H).ceil());
  return core::HexTileParams(H, W0, D0, D1);
}

OracleSchedule makeHexKey(const ir::StencilProgram &P,
                          const core::HexTileParams &Prm,
                          uint64_t BlockPermSeed) {
  auto Hex = std::make_shared<core::HexSchedule>(Prm);
  unsigned Rank = P.spaceRank();
  OracleSchedule S;
  // [T, phase, a | S0, b, s1..]: within one phase row every tile spans the
  // same time window, so ordering by the local time a is a legal
  // serialization of the tiles; S0 (blocks) and the spatial coordinates at
  // equal a (threads) are parallel.
  S.ParallelFrom = 3;
  S.Key = [Hex, Rank, BlockPermSeed](std::span<const int64_t> Pt,
                                     std::vector<int64_t> &Key) {
    core::HexTileCoord C = Hex->locate(Pt[0], Pt[1]);
    Key.push_back(C.T);
    Key.push_back(C.Phase);
    Key.push_back(C.A);
    Key.push_back(permuteBlock(BlockPermSeed, C.S0));
    Key.push_back(C.B);
    for (unsigned D = 1; D < Rank; ++D)
      Key.push_back(Pt[D + 1]);
  };
  return S;
}

OracleSchedule makeHybridKey(const ir::StencilProgram &P,
                             const core::HexTileParams &Prm,
                             const OracleTiling &T,
                             const std::vector<deps::ConeBounds> &Cones,
                             uint64_t BlockPermSeed) {
  unsigned Rank = P.spaceRank();
  std::vector<int64_t> Widths = innerWidthsFor(T, Rank);
  std::vector<Rational> Slopes;
  for (unsigned D = 1; D < Rank; ++D)
    Slopes.push_back(Cones[D].Delta1);
  auto Sched =
      std::make_shared<core::HybridSchedule>(Prm, Widths, Slopes);
  OracleSchedule S;
  // Sec. 4.1: [T, p | S0 blocks] then S1..Sn, t' sequential in the kernel,
  // s0'..sn' thread-parallel. The key serializes the blocks (optionally
  // permuted) and keeps the per-block sequential prefix, so equal keys are
  // exactly the thread-parallel instances.
  S.ParallelFrom = 3 + static_cast<int>(Rank - 1) + 1;
  S.Key = [Sched, Rank, BlockPermSeed](std::span<const int64_t> Pt,
                                       std::vector<int64_t> &Key) {
    core::HybridVector V = Sched->map(Pt);
    Key.push_back(V.T);
    Key.push_back(V.Phase);
    Key.push_back(permuteBlock(BlockPermSeed, V.S[0]));
    for (unsigned D = 1; D < Rank; ++D)
      Key.push_back(V.S[D]);
    Key.push_back(V.LocalT);
    for (int64_t L : V.LocalS)
      Key.push_back(L);
  };
  return S;
}

OracleSchedule makeClassicalKey(const ir::StencilProgram &P,
                                const OracleTiling &T,
                                const std::vector<deps::ConeBounds> &Cones) {
  unsigned Rank = P.spaceRank();
  int64_t Period = 2 * std::max<int64_t>(T.H, 1) + 2;
  auto Tilings = std::make_shared<std::vector<core::ClassicalTiling>>();
  std::vector<int64_t> Inner = innerWidthsFor(T, Rank);
  for (unsigned D = 0; D < Rank; ++D) {
    int64_t W = D == 0 ? std::max<int64_t>(T.W0, 1) : Inner[D - 1];
    Tilings->emplace_back(W, Cones[D].Delta1, Period);
  }
  OracleSchedule S;
  // [TB, S0..Sn, u | locals]: the delta1 skew makes every tile index
  // non-decreasing along dependences, time bands are sequential, and equal
  // keys share (band, tiles, time) -- genuinely parallel points.
  S.ParallelFrom = 2 + static_cast<int>(Rank);
  S.Key = [Tilings, Rank, Period](std::span<const int64_t> Pt,
                                  std::vector<int64_t> &Key) {
    int64_t That = Pt[0];
    int64_t U = euclidMod(That, Period);
    Key.push_back(floorDiv(That, Period));
    for (unsigned D = 0; D < Rank; ++D)
      Key.push_back((*Tilings)[D].tileIndex(Pt[D + 1], U));
    Key.push_back(U);
    for (unsigned D = 0; D < Rank; ++D)
      Key.push_back((*Tilings)[D].localIndex(Pt[D + 1], U));
  };
  return S;
}

OracleSchedule makeDiamondKey(const ir::StencilProgram &P,
                              const OracleTiling &T,
                              const std::vector<deps::ConeBounds> &Cones,
                              uint64_t BlockPermSeed) {
  OracleSchedule S;
  if (Cones[0].Delta0 > Rational(1) || Cones[0].Delta1 > Rational(1)) {
    S.Skipped = "diamond tiling requires cone slopes <= 1, got " +
                Cones[0].str();
    return S;
  }
  unsigned Rank = P.spaceRank();
  auto Diamond = std::make_shared<baselines::DiamondTiling>(
      std::max<int64_t>(T.DiamondPeriod, 2));
  // [A-B wavefront, tile A, t | s..]: dependences never decrease A or
  // increase B, so tiles within one wavefront are independent blocks;
  // within a tile time is sequential and equal-time points are parallel.
  S.ParallelFrom = 3;
  S.Key = [Diamond, Rank, BlockPermSeed](std::span<const int64_t> Pt,
                                         std::vector<int64_t> &Key) {
    int64_t A = 0, B = 0;
    Diamond->locate(Pt[0], Pt[1], A, B);
    Key.push_back(A - B);
    Key.push_back(permuteBlock(BlockPermSeed, A));
    Key.push_back(Pt[0]);
    for (unsigned D = 0; D < Rank; ++D)
      Key.push_back(Pt[D + 1]);
  };
  return S;
}

} // namespace

exec::Initializer harness::seededInit(uint64_t Seed) {
  return [Seed](unsigned Field, std::span<const int64_t> Coords) {
    uint64_t H = mix64(Seed ^ (0xa076'1d64'78bd'642full + Field));
    for (int64_t C : Coords)
      H = mix64(H ^ static_cast<uint64_t>(C));
    return static_cast<float>(H >> 40) / static_cast<float>(1 << 24) * 2.0f -
           1.0f;
  };
}

namespace {

/// Key construction against precomputed cone bounds (the analysis is
/// seed-independent, so callers replaying several serializations compute
/// the bounds once).
OracleSchedule makeScheduleWithCones(
    const ir::StencilProgram &P, ScheduleKind K, const OracleTiling &T,
    const std::vector<deps::ConeBounds> &Cones, uint64_t BlockPermSeed) {
  core::HexTileParams Prm =
      legalizedHexParams(T, Cones[0].Delta0, Cones[0].Delta1);
  switch (K) {
  case ScheduleKind::Hex:
    return makeHexKey(P, Prm, BlockPermSeed);
  case ScheduleKind::Hybrid:
    return makeHybridKey(P, Prm, T, Cones, BlockPermSeed);
  case ScheduleKind::Classical:
    return makeClassicalKey(P, T, Cones);
  case ScheduleKind::Diamond:
    return makeDiamondKey(P, T, Cones, BlockPermSeed);
  case ScheduleKind::Overlapped: {
    // The fifth family recomputes instances redundantly -- one instance
    // runs in several tiles -- so no lexicographic key can express it;
    // runDifferential replays it through exec::runOverlapped instead.
    OracleSchedule S;
    S.Skipped = "overlapped tiling has no schedule key (redundant "
                "recomputation); replayed via exec::runOverlapped";
    return S;
  }
  }
  return {};
}

} // namespace

namespace {

/// EmitSchedule of an oracle kind; nullopt when the kind has no emitter
/// rendering (Diamond).
std::optional<codegen::EmitSchedule> emitScheduleFor(ScheduleKind K) {
  switch (K) {
  case ScheduleKind::Hex:
    return codegen::EmitSchedule::Hex;
  case ScheduleKind::Hybrid:
    return codegen::EmitSchedule::Hybrid;
  case ScheduleKind::Classical:
    return codegen::EmitSchedule::Classical;
  case ScheduleKind::Diamond:
    return std::nullopt;
  case ScheduleKind::Overlapped:
    return codegen::EmitSchedule::Overlapped;
  }
  return std::nullopt;
}

/// Mechanism four: compile the program for the oracle's (legalized) tiling,
/// render it with HostEmitter as the kind's flavor, JIT-build and execute
/// the emitted C++, and compare against the reference bit for bit.
/// \p Cones are the caller's precomputed bounds (same instance the key
/// mechanisms legalized against).
std::string runEmittedMechanism(const ir::StencilProgram &P, ScheduleKind K,
                                const OracleTiling &T,
                                const OracleOptions &Opts,
                                const std::vector<deps::ConeBounds> &Cones,
                                const exec::Initializer &Init) {
  std::optional<codegen::EmitSchedule> ES = emitScheduleFor(K);
  if (!ES || !emittedMechanismAvailable())
    return ""; // No emitter for this kind / no compiler: clean skip.
  codegen::TileSizeRequest Sizes;
  // The same legalization the key mechanisms use, so the emitted loops
  // replay the identical tiling the diagnostics name.
  core::HexTileParams Prm =
      legalizedHexParams(T, Cones[0].Delta0, Cones[0].Delta1);
  Sizes.H = Prm.H;
  Sizes.W0 = Prm.W0;
  Sizes.InnerWidths = innerWidthsFor(T, P.spaceRank());
  codegen::OptimizationConfig EC = Opts.EmitConfig;
  if (Opts.ShimThreads >= 0)
    EC.ShimThreads = Opts.ShimThreads;
  codegen::CompiledHybrid C = codegen::compileHybrid(P, Sizes, EC);
  std::ostringstream Ctx;
  Ctx << "tiling{" << T.str() << "} config{" << EC.str() << "} seed=0x"
      << std::hex << Opts.Seed;
  EmittedDiff D = runEmittedDifferential(P, C, *ES, Init, Ctx.str());
  return D.Message;
}

} // namespace

bool harness::emittedMechanismAvailable() { return JitUnit::available(); }

codegen::CompiledHybrid
harness::compileOracleHybrid(const ir::StencilProgram &P,
                             const OracleTiling &T,
                             const codegen::OptimizationConfig &Config) {
  deps::DependenceInfo Deps = deps::analyzeDependences(P);
  std::vector<deps::ConeBounds> Cones = deps::computeAllConeBounds(Deps);
  core::HexTileParams Prm =
      legalizedHexParams(T, Cones[0].Delta0, Cones[0].Delta1);
  codegen::TileSizeRequest Sizes;
  Sizes.H = Prm.H;
  Sizes.W0 = Prm.W0;
  Sizes.InnerWidths = innerWidthsFor(T, P.spaceRank());
  return codegen::compileHybrid(P, Sizes, Config);
}

OracleSchedule harness::makeOracleSchedule(const ir::StencilProgram &P,
                                           ScheduleKind K,
                                           const OracleTiling &T,
                                           uint64_t BlockPermSeed) {
  deps::DependenceInfo Deps = deps::analyzeDependences(P);
  return makeScheduleWithCones(P, K, T, deps::computeAllConeBounds(Deps),
                               BlockPermSeed);
}

std::string harness::runDifferential(const ir::StencilProgram &P,
                                     ScheduleKind K, const OracleTiling &T,
                                     const OracleOptions &Opts) {
  if (std::string Err = P.verify(); !Err.empty())
    return "oracle input invalid: " + Err;
  exec::Initializer Init = seededInit(Opts.Seed);
  exec::GridStorage Ref(P, Init);
  exec::runReference(P, Ref);

  deps::DependenceInfo Deps = deps::analyzeDependences(P);
  std::vector<deps::ConeBounds> Cones = deps::computeAllConeBounds(Deps);
  core::IterationDomain Domain = core::IterationDomain::forProgram(P);
  int64_t LastStep = P.timeSteps() - 1;
  // One backend for all shuffles: a ThreadPool backend keeps its workers
  // alive across the replays instead of respawning threads per run, and a
  // DeviceSim backend keeps one device chain.
  std::unique_ptr<exec::ExecutionBackend> Backend =
      exec::makeBackend(Opts.Backend, Opts.NumThreads, Opts.NumDevices,
                        /*Topology=*/nullptr, Opts.DeviceSimThreaded,
                        Opts.MinTaskInstances);
  if (K == ScheduleKind::Overlapped) {
    // Fifth family: no schedule key (see makeScheduleWithCones); replay
    // through the dedicated overlapped driver. Bands of H+1 steps mirror
    // the hexagonal time reach; the tile width is the legalized W0.
    core::HexTileParams Prm =
        legalizedHexParams(T, Cones[0].Delta0, Cones[0].Delta1);
    core::OverlappedSchedule Sched(P, std::max<int64_t>(T.H, 1) + 1,
                                   Prm.W0);
    for (int Shuffle = 0; Shuffle < std::max(Opts.NumShuffles, 1);
         ++Shuffle) {
      uint64_t RunSeed = Shuffle == 0
                             ? 0
                             : mix64(Opts.Seed +
                                     static_cast<uint64_t>(Shuffle));
      exec::ScheduleRunOptions RunOpts;
      RunOpts.ShuffleSeed = RunSeed;
      RunOpts.Backend = Opts.Backend;
      RunOpts.NumThreads = Opts.NumThreads;
      RunOpts.NumDevices = Opts.NumDevices;
      RunOpts.DeviceSimThreaded = Opts.DeviceSimThreaded;
      RunOpts.MinTaskInstances = Opts.MinTaskInstances;
      RunOpts.BackendOverride = Backend.get();
      std::unique_ptr<exec::FieldStorage> Got =
          exec::makeOverlappedStorage(P, Sched, RunOpts, Init);
      exec::runOverlapped(P, Sched, *Got, RunOpts);
      std::string Diff = exec::compareStoragesAtStep(Ref, *Got, LastStep);
      if (!Diff.empty()) {
        std::ostringstream OS;
        OS << "[" << scheduleKindName(K) << "] program=" << P.name()
           << " backend=" << Backend->name();
        if (Opts.Backend == exec::BackendKind::DeviceSim)
          OS << " devices=" << Opts.NumDevices
             << (Opts.DeviceSimThreaded ? " threaded" : " sequential");
        OS << " schedule{" << Sched.str() << "} seed=0x" << std::hex
           << Opts.Seed << std::dec << " shuffle=" << Shuffle
           << " diverges from the row-major reference: " << Diff << "\n";
        return OS.str();
      }
    }
    if (Opts.RunEmitted)
      return runEmittedMechanism(P, K, T, Opts, Cones, Init);
    return "";
  }
  for (int Shuffle = 0; Shuffle < std::max(Opts.NumShuffles, 1); ++Shuffle) {
    // Shuffle 0 replays blocks in natural order with stable thread order;
    // later shuffles permute the blocks and shuffle equal-key threads.
    uint64_t RunSeed =
        Shuffle == 0 ? 0 : mix64(Opts.Seed + static_cast<uint64_t>(Shuffle));
    OracleSchedule S = makeScheduleWithCones(P, K, T, Cones, RunSeed);
    if (!S.Key)
      return ""; // Kind legally inapplicable; counted as agreement.
    exec::ScheduleRunOptions RunOpts;
    RunOpts.ShuffleSeed = RunSeed;
    // Parallel backends always honor the schedule's parallel claim, so the
    // pool dispatches wavefronts concurrently even on the stable shuffle-0
    // replay; the serial backend keeps the seed behavior (shuffle 0 replays
    // the fully sequential key order).
    bool Serial = Opts.Backend == exec::BackendKind::Serial;
    RunOpts.ParallelFrom = (Serial && RunSeed == 0) ? -1 : S.ParallelFrom;
    RunOpts.Backend = Opts.Backend;
    RunOpts.NumDevices = Opts.NumDevices;
    RunOpts.BackendOverride = Backend.get();
    // makeStorage partitions the grid to match a DeviceSim override.
    std::unique_ptr<exec::FieldStorage> Got =
        exec::makeStorage(P, RunOpts, Init);
    exec::runSchedule(P, *Got, Domain, S.Key, RunOpts);
    std::string Diff = exec::compareStoragesAtStep(Ref, *Got, LastStep);
    if (!Diff.empty()) {
      std::ostringstream OS;
      OS << "[" << scheduleKindName(K) << "] program=" << P.name()
         << " backend=" << Backend->name();
      if (Opts.Backend == exec::BackendKind::DeviceSim)
        OS << " devices=" << Opts.NumDevices
           << (Opts.DeviceSimThreaded ? " threaded" : " sequential");
      OS << " tiling{" << T.str()
         << "} seed=0x" << std::hex << Opts.Seed << std::dec
         << " shuffle=" << Shuffle
         << " diverges from the row-major reference: " << Diff << "\n";
      return OS.str();
    }
  }
  if (Opts.RunEmitted)
    return runEmittedMechanism(P, K, T, Opts, Cones, Init);
  return "";
}

std::string harness::runDifferentialAllKinds(const ir::StencilProgram &P,
                                             const OracleTiling &T,
                                             const OracleOptions &Opts) {
  std::string All;
  for (ScheduleKind K : allScheduleKinds())
    All += runDifferential(P, K, T, Opts);
  return All;
}
