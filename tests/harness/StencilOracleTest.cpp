//===- StencilOracleTest.cpp - Randomized differential tests ------------------===//
//
// Differential testing of every schedule family against the naive row-major
// executor (the style used to validate overlapped-tiling schedules in
// arXiv:1909.07190 and cross-model tile sweeps in arXiv:1001.1718): each
// gallery stencil runs over randomized grid sizes, tile parameters and
// initial/boundary values, under several pseudo-random serializations of the
// parallel dimensions, and the final fields must agree bit-exactly. Every
// case derives from a logged RNG seed, so any failure reproduces from the
// test output alone.
//
//===----------------------------------------------------------------------===//

#include "harness/StencilOracle.h"

#include "ir/StencilGallery.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>

using namespace hextile;
using namespace hextile::harness;

namespace {

/// Portable FNV-1a (std::hash is implementation-defined, which would make
/// logged seeds irreproducible across standard libraries).
uint64_t fnv1a(const std::string &S) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (char C : S) {
    H ^= static_cast<unsigned char>(C);
    H *= 0x100000001b3ull;
  }
  return H;
}

/// Seed of one stencil's sweep. HEXTILE_ORACLE_SEED, when set, is used
/// *verbatim* for every sweep, so pasting a logged seed reproduces the
/// failing sweep exactly.
uint64_t sweepSeed(const std::string &Name) {
  if (const char *Env = std::getenv("HEXTILE_ORACLE_SEED"))
    return std::strtoull(Env, nullptr, 0);
  return 0x48455854494c4531ull /* "HEXTILE1" */ ^ fnv1a(Name);
}

/// Sizes a gallery program down to oracle scale with randomized,
/// deliberately non-cubic grids (distinct extents exercise the boundary
/// handling of every dimension).
ir::StencilProgram randomizedProgram(const std::string &Name,
                                     std::mt19937_64 &Rng) {
  ir::StencilProgram P = ir::makeByName(Name);
  EXPECT_FALSE(P.name().empty()) << "unknown gallery stencil " << Name;
  bool Is3D = P.spaceRank() >= 3;
  std::uniform_int_distribution<int64_t> Size(Is3D ? 8 : 12, Is3D ? 14 : 26);
  std::uniform_int_distribution<int64_t> Steps(3, Is3D ? 5 : 9);
  std::vector<int64_t> Sizes;
  for (unsigned D = 0; D < P.spaceRank(); ++D)
    Sizes.push_back(Size(Rng));
  P.setSpaceSizes(Sizes);
  P.setTimeSteps(Steps(Rng));
  return P;
}

OracleTiling randomizedTiling(std::mt19937_64 &Rng, unsigned Rank) {
  std::uniform_int_distribution<int64_t> H(1, 3);
  std::uniform_int_distribution<int64_t> W0(1, 5);
  std::uniform_int_distribution<int64_t> Inner(2, 6);
  std::uniform_int_distribution<int64_t> DiamondP(2, 7);
  OracleTiling T;
  T.H = H(Rng);
  T.W0 = W0(Rng);
  for (unsigned D = 1; D < Rank; ++D)
    T.InnerWidths.push_back(Inner(Rng));
  T.DiamondPeriod = DiamondP(Rng);
  return T;
}

/// One backend configuration of the sweep: the kind plus the simulated
/// device count and execution model (both meaningful for DeviceSim only).
struct BackendSpec {
  exec::BackendKind Kind;
  unsigned NumDevices;
  bool Threaded = false;

  std::string str() const {
    std::string S = exec::backendKindName(Kind);
    if (Kind == exec::BackendKind::DeviceSim) {
      if (Threaded)
        S = "threaded_" + S;
      S += std::to_string(NumDevices);
    }
    return S;
  }
};

class StencilOracleSweep
    : public ::testing::TestWithParam<
          std::tuple<const char *, BackendSpec>> {};

} // namespace

/// The headline differential sweep: for each gallery stencil, at least
/// three randomized tile-parameter points, each checked for bit-exact
/// agreement between the naive executor and all four schedule families --
/// once replayed serially, and once with every wavefront's parallel
/// instances spread across a 4-thread work-stealing pool (real concurrency,
/// so an illegal tiling shows up as a data race, not just a bad
/// serialization). The RNG draws are identical for both backends, so a
/// pooled failure reproduces serially from the same logged seed.
TEST_P(StencilOracleSweep, SchedulesMatchNaiveExecutor) {
  const std::string Name = std::get<0>(GetParam());
  BackendSpec Backend = std::get<1>(GetParam());
  uint64_t Seed = sweepSeed(Name);
  std::mt19937_64 Rng(Seed);
  SCOPED_TRACE(::testing::Message()
               << "stencil=" << Name << " backend=" << Backend.str()
               << " sweep seed=0x" << std::hex << Seed
               << " (set HEXTILE_ORACLE_SEED to this value to reproduce)");
  for (int Point = 0; Point < 3; ++Point) {
    ir::StencilProgram P = randomizedProgram(Name, Rng);
    OracleTiling T = randomizedTiling(Rng, P.spaceRank());
    OracleOptions Opts;
    Opts.Seed = Rng();
    Opts.NumShuffles = 3;
    Opts.Backend = Backend.Kind;
    Opts.NumThreads = 4;
    Opts.NumDevices = Backend.NumDevices;
    Opts.DeviceSimThreaded = Backend.Threaded;
    EXPECT_EQ(runDifferentialAllKinds(P, T, Opts), "")
        << "tile point " << Point << ", tiling{" << T.str() << "}, seed=0x"
        << std::hex << Opts.Seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Gallery, StencilOracleSweep,
    ::testing::Combine(
        ::testing::Values("jacobi1d", "jacobi2d", "laplacian2d", "heat2d",
                          "gradient2d", "fdtd2d", "laplacian3d", "heat3d",
                          "gradient3d", "skewed1d", "wave2d", "varheat2d",
                          "heat2d4"),
        // DeviceSim appears both ways: one sequential column pins the
        // legacy deterministic replay, the threaded columns race the
        // two-phase barrier at 1/2/4 devices (bit-exactness is the race
        // detector; under TSan it is also a happens-before proof).
        ::testing::Values(
            BackendSpec{exec::BackendKind::Serial, 0, false},
            BackendSpec{exec::BackendKind::ThreadPool, 0, false},
            BackendSpec{exec::BackendKind::DeviceSim, 2, false},
            BackendSpec{exec::BackendKind::DeviceSim, 1, true},
            BackendSpec{exec::BackendKind::DeviceSim, 2, true},
            BackendSpec{exec::BackendKind::DeviceSim, 4, true})),
    [](const ::testing::TestParamInfo<
        std::tuple<const char *, BackendSpec>> &I) {
      return std::string(std::get<0>(I.param)) + "_" +
             std::get<1>(I.param).str();
    });

/// Degenerate extremes the randomized sweep rarely draws: minimal tiles,
/// minimal grids, single time step, and a tall-skinny iteration space.
TEST(StencilOracleTest, DegenerateTilesAndGrids) {
  ir::StencilProgram P = ir::makeJacobi2D(6, 1);
  OracleTiling T;
  T.H = 1;
  T.W0 = 1;
  T.InnerWidths = {1};
  T.DiamondPeriod = 2;
  EXPECT_EQ(runDifferentialAllKinds(P, T), "");

  ir::StencilProgram Tall = ir::makeJacobi1D(8, 20);
  OracleTiling T2;
  T2.H = 6;
  T2.W0 = 2;
  EXPECT_EQ(runDifferentialAllKinds(Tall, T2), "");
}

/// Tiles larger than the whole iteration space must degenerate gracefully.
TEST(StencilOracleTest, TilesLargerThanDomain) {
  ir::StencilProgram P = ir::makeHeat2D(10, 3);
  OracleTiling T;
  T.H = 12;
  T.W0 = 40;
  T.InnerWidths = {64};
  T.DiamondPeriod = 50;
  EXPECT_EQ(runDifferentialAllKinds(P, T), "");
}

/// The multi-statement program (fdtd: ey/ex/hz with same-step reads) is the
/// sharpest probe of the canonical-time interleaving.
TEST(StencilOracleTest, MultiStatementProgram) {
  ir::StencilProgram P = ir::makeFdtd2D(14, 4);
  OracleTiling T;
  T.H = 2;
  T.W0 = 3;
  T.InnerWidths = {5};
  OracleOptions Opts;
  Opts.NumShuffles = 4;
  EXPECT_EQ(runDifferentialAllKinds(P, T, Opts), "");
}

/// Rational cone slopes (skewed1d: delta0 = 1, delta1 = 2) exercise the
/// fractional-skew paths of the hexagonal and classical constructions, and
/// must make the oracle *skip* diamond tiling (slopes > 1 are outside its
/// legality domain).
TEST(StencilOracleTest, SteepConeSkipsDiamond) {
  ir::StencilProgram P = ir::makeSkewedExample1D(40, 8);
  OracleTiling T;
  T.H = 2;
  T.W0 = 4;
  OracleSchedule S = makeOracleSchedule(P, ScheduleKind::Diamond, T);
  EXPECT_EQ(S.Key, nullptr);
  EXPECT_NE(S.Skipped.find("slopes"), std::string::npos) << S.Skipped;
  // The other three families handle the steep cone.
  for (ScheduleKind K :
       {ScheduleKind::Hex, ScheduleKind::Hybrid, ScheduleKind::Classical})
    EXPECT_EQ(runDifferential(P, K, T), "") << scheduleKindName(K);
}

/// The oracle must *detect* an illegal schedule: claiming the sequential
/// local-time dimension of the hex schedule as parallel violates the
/// intra-tile flow dependences for some shuffle.
TEST(StencilOracleTest, DetectsIllegalSchedule) {
  ir::StencilProgram P = ir::makeJacobi2D(18, 6);
  OracleTiling T;
  T.H = 2;
  T.W0 = 3;
  OracleSchedule S = makeOracleSchedule(P, ScheduleKind::Hex, T);
  ASSERT_NE(S.Key, nullptr);
  exec::ScheduleRunOptions Opts;
  Opts.ParallelFrom = 0; // Illegally parallelize T, phase and local time.
  bool Caught = false;
  for (uint64_t Seed : {0x1111ull, 0x2222ull, 0x3333ull}) {
    Opts.ShuffleSeed = Seed;
    if (!exec::checkScheduleEquivalence(P, S.Key, Opts).empty())
      Caught = true;
  }
  EXPECT_TRUE(Caught)
      << "fully parallel replay never diverged -- oracle has no teeth";
}

/// Agreement is invariant under the randomized initial values: two
/// different seeds both pass (distinct data, same bit-exact verdict).
TEST(StencilOracleTest, SeedVariationStaysBitExact) {
  ir::StencilProgram P = ir::makeGradient2D(16, 5);
  OracleTiling T;
  T.H = 1;
  T.W0 = 2;
  T.InnerWidths = {4};
  for (uint64_t Seed : {0xabcdefull, 0x1234567ull}) {
    OracleOptions Opts;
    Opts.Seed = Seed;
    EXPECT_EQ(runDifferentialAllKinds(P, T, Opts), "")
        << "seed=0x" << std::hex << Seed;
  }
}

/// The OracleOptions::ShimThreads override: the fourth mechanism compiles
/// a *parallel* unit (HT_LAUNCH_1D dispatching blocks across worker
/// teams) when the axis is set, without touching EmitConfig -- and the
/// result stays bit-exact against the reference.
TEST(StencilOracleTest, ShimThreadsOverrideRunsParallelEmittedUnit) {
  if (!emittedMechanismAvailable())
    GTEST_SKIP() << "no system C++ compiler; emitted mechanism not run";
  ir::StencilProgram P = ir::makeJacobi2D(16, 5);
  OracleTiling T;
  T.H = 1;
  T.W0 = 2;
  T.InnerWidths = {5};
  OracleOptions Opts;
  Opts.RunEmitted = true;
  Opts.NumShuffles = 1;
  Opts.ShimThreads = 2; // Overrides EmitConfig.ShimThreads (still 0).
  EXPECT_EQ(Opts.EmitConfig.ShimThreads, 0);
  EXPECT_EQ(runDifferential(P, ScheduleKind::Hybrid, T, Opts), "");
}
