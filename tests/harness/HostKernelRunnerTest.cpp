//===- HostKernelRunnerTest.cpp - JIT harness tests ---------------------------===//
//
// Exercises the emitted-kernel JIT itself: compiler discovery, the
// compile/load/run round trip, diagnostics for broken units, and the
// shim's out-of-bounds trap (a negative test: a deliberately bad index
// must abort with a diagnostic, not read garbage). Every test skips
// cleanly on machines without a system C++ compiler.
//
//===----------------------------------------------------------------------===//

#include "harness/HostKernelRunner.h"

#include "codegen/HostEmitter.h"
#include "codegen/HybridCompiler.h"
#include "ir/StencilGallery.h"

#include <gtest/gtest.h>

#include <filesystem>

using namespace hextile;
using namespace hextile::harness;

namespace {

#define SKIP_WITHOUT_COMPILER()                                              \
  do {                                                                       \
    if (!JitUnit::available())                                               \
      GTEST_SKIP() << "no system C++ compiler; emitted kernels not run";     \
  } while (0)

codegen::CompiledHybrid compileSmall(const ir::StencilProgram &P, int64_t H,
                                     int64_t W0,
                                     std::vector<int64_t> Inner) {
  codegen::TileSizeRequest R;
  R.H = H;
  R.W0 = W0;
  R.InnerWidths = std::move(Inner);
  return codegen::compileHybrid(P, R);
}

} // namespace

TEST(HostKernelRunnerTest, RoundTripRunsEmittedUnit) {
  SKIP_WITHOUT_COMPILER();
  ir::StencilProgram P = ir::makeJacobi1D(40, 10);
  codegen::CompiledHybrid C = compileSmall(P, 2, 3, {});
  EmittedDiff D = runEmittedDifferential(P, C, codegen::EmitSchedule::Hybrid,
                                         exec::defaultInit, "unit-test");
  EXPECT_FALSE(D.Skipped);
  EXPECT_EQ(D.Message, "");
}

TEST(HostKernelRunnerTest, ReportsWithoutRunningWhenNoCompiler) {
  // The skip path itself must be exercised wherever a compiler *is*
  // available too: a null-compiler run reports Skipped and no diagnostic.
  if (JitUnit::available())
    GTEST_SKIP() << "compiler present; skip path covered on bare machines";
  ir::StencilProgram P = ir::makeJacobi1D(24, 4);
  codegen::CompiledHybrid C = compileSmall(P, 1, 2, {});
  EmittedDiff D = runEmittedDifferential(P, C, codegen::EmitSchedule::Hybrid,
                                         exec::defaultInit);
  EXPECT_TRUE(D.Skipped);
  EXPECT_EQ(D.Message, "");
}

TEST(HostKernelRunnerTest, CompileFailureKeepsArtifactsAndLog) {
  SKIP_WITHOUT_COMPILER();
  JitUnit Unit;
  std::string Err = Unit.build("#include \"cuda_shim.h\"\n"
                               "this is not C++;\n");
  ASSERT_NE(Err, "");
  EXPECT_NE(Err.find("failed to compile"), std::string::npos);
  EXPECT_NE(Err.find(Unit.workDir()), std::string::npos);
  // The kept scratch dir holds the unit and the compiler log for offline
  // reproduction.
  EXPECT_TRUE(std::filesystem::exists(
      std::filesystem::path(Unit.workDir()) / "kernel.cpp"));
  EXPECT_TRUE(std::filesystem::exists(
      std::filesystem::path(Unit.workDir()) / "compile.log"));
  std::filesystem::remove_all(Unit.workDir());
}

TEST(HostKernelRunnerTest, SymbolLookupFindsExportedEntry) {
  SKIP_WITHOUT_COMPILER();
  JitUnit Unit;
  ASSERT_EQ(Unit.build("#include \"cuda_shim.h\"\n"
                       "extern \"C\" ht_int ht_probe(void) "
                       "{ return ht_fdiv(-7, 2); }\n"),
            "");
  using ProbeFn = long long (*)();
  auto Probe = reinterpret_cast<ProbeFn>(Unit.symbol("ht_probe"));
  ASSERT_NE(Probe, nullptr);
  EXPECT_EQ(Probe(), -4); // Floor division, not C truncation.
  EXPECT_EQ(Unit.symbol("ht_no_such_symbol"), nullptr);
}

using HostKernelRunnerDeathTest = ::testing::Test;

TEST(HostKernelRunnerDeathTest, ShimTrapsOutOfBoundsAccess) {
  SKIP_WITHOUT_COMPILER();
  // A unit that indexes one past the end through the checked accessor: the
  // shim must abort with a diagnostic naming the buffer, never touch the
  // memory.
  JitUnit Unit;
  ASSERT_EQ(Unit.build("#include \"cuda_shim.h\"\n"
                       "extern \"C\" float ht_oob(float *g_buf) "
                       "{ return HT_AT(g_buf, 4, 4); }\n"),
            "");
  using OobFn = float (*)(float *);
  auto Oob = reinterpret_cast<OobFn>(Unit.symbol("ht_oob"));
  ASSERT_NE(Oob, nullptr);
  float Buf[4] = {0, 1, 2, 3};
  EXPECT_DEATH(Oob(Buf), "out-of-bounds access to g_buf");
}

TEST(HostKernelRunnerDeathTest, ShimTrapsStagedWindowEscape) {
  SKIP_WITHOUT_COMPILER();
  // The staged mirror of the global-buffer OOB test: a kernel whose
  // staged HT_AT access escapes its HT_SHARED staging window must abort
  // with a diagnostic naming the *staging* buffer -- never spill into
  // whatever sits next to the arena.
  JitUnit Unit;
  ASSERT_EQ(Unit.build("#include \"cuda_shim.h\"\n"
                       "extern \"C\" float ht_stage_oob(ht_int idx) {\n"
                       "  HT_SHARED(ht_s_A, 14);\n"
                       "  for (ht_int i = 0; i < 14; ++i)\n"
                       "    HT_AT(ht_s_A, i, 14) = (float)i;\n"
                       "  return HT_AT(ht_s_A, idx, 14);\n"
                       "}\n"),
            "");
  using StageFn = float (*)(long long);
  auto Stage = reinterpret_cast<StageFn>(Unit.symbol("ht_stage_oob"));
  ASSERT_NE(Stage, nullptr);
  EXPECT_EQ(Stage(3), 3.0f); // In-window staged access works.
  EXPECT_DEATH(Stage(14), "out-of-bounds access to ht_s_A");
  EXPECT_DEATH(Stage(-1), "out-of-bounds access to ht_s_A");
}

TEST(HostKernelRunnerTest, ShimCheckedAccessReadsInBounds) {
  SKIP_WITHOUT_COMPILER();
  JitUnit Unit;
  ASSERT_EQ(Unit.build("#include \"cuda_shim.h\"\n"
                       "extern \"C\" float ht_read(float *g_buf) "
                       "{ return HT_AT(g_buf, 2, 4); }\n"),
            "");
  using ReadFn = float (*)(float *);
  auto Read = reinterpret_cast<ReadFn>(Unit.symbol("ht_read"));
  ASSERT_NE(Read, nullptr);
  float Buf[4] = {0.0f, 1.0f, 7.5f, 3.0f};
  EXPECT_EQ(Read(Buf), 7.5f);
}
