//===- ShimRuntimeTest.cpp - Parallel cuda_shim runtime semantics ---------===//
//
// Unit tests for the *parallel* mode of the generated cuda_shim.h, driven
// through hand-written kernels (not emitted ones) so each shim mechanism
// is pinned in isolation:
//
//  * barrier rendezvous: a counter armed between barrier-delimited phases
//    is seen by every thread -- under TSan this is only race-free through
//    the barrier's acquire/release handshake, so a broken __syncthreads
//    is a deterministic TSan report, not a flaky value check;
//  * pool geometry: HT_SHIM_THREADS / HT_SHIM_TEAMS environment overrides
//    re-shape the worker pool at run time (observed via HT_THREADS);
//  * oversubscription: more blocks than worker teams -- every block runs
//    exactly once off the shared atomic counter;
//  * bounds traps: HT_AT aborts with the correct buffer name when the
//    out-of-bounds access happens on a worker thread (global buffers and
//    HT_SHARED staging arenas both).
//
// Machines without a system compiler skip (visibly, not silently).
//
//===----------------------------------------------------------------------===//

#include "harness/HostKernelRunner.h"

#include <cstdlib>
#include <gtest/gtest.h>
#include <string>

using namespace hextile;
using harness::JitUnit;

namespace {

/// Scoped environment override for the shim pool-geometry variables.
class ScopedEnv {
public:
  ScopedEnv(const char *Name, const std::string &Value) : Name(Name) {
    if (const char *Old = getenv(Name)) {
      HadOld = true;
      OldValue = Old;
    }
    setenv(Name, Value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (HadOld)
      setenv(Name, OldValue.c_str(), 1);
    else
      unsetenv(Name);
  }

private:
  const char *Name;
  bool HadOld = false;
  std::string OldValue;
};

/// Rendezvous + geometry + block-distribution probes, one unit. The
/// baked-in default is 2 threads/block; every test overrides it through
/// the environment to prove the runtime selection works.
constexpr const char *ProbeSource = R"cpp(#define HT_SHIM_THREADS 2
#include "cuda_shim.h"

static ht_int Flags[512];
static ht_int Counter;
static ht_int Observed[512];
static ht_int ObservedSize;

__global__ void probe(ht_int ht_block, ht_int nthreads) {
  (void)ht_block;
  // Phase 1: every logical thread arms its flag.
  HT_FOR_THREADS(tid, nthreads)
    Flags[tid] = 1;
  __syncthreads();
  // Phase 2: one thread arms the counter from the flags.
  HT_FOR_THREADS(t0, 1) {
    Counter = 0;
    for (ht_int I = 0; I < nthreads; ++I)
      Counter += Flags[I];
    ObservedSize = HT_THREADS;
  }
  __syncthreads();
  // Phase 3: every logical thread must see the armed counter.
  HT_FOR_THREADS(tid, nthreads)
    Observed[tid] = Counter;
}

/// Returns the physical team size when every thread saw the full
/// rendezvous, -1 on any miss.
extern "C" ht_int probe_run(ht_int nthreads) {
  for (ht_int I = 0; I < 512; ++I) {
    Flags[I] = 0;
    Observed[I] = 0;
  }
  Counter = -1;
  ObservedSize = -1;
  HT_LAUNCH_1D(probe, 1, nthreads);
  for (ht_int I = 0; I < nthreads; ++I)
    if (Observed[I] != nthreads)
      return -1;
  return ObservedSize;
}

static ht_int BlockCount[256];

__global__ void bump(ht_int ht_block, ht_int unused) {
  (void)unused;
  HT_FOR_THREADS(t0, 1)
    BlockCount[ht_block] += 1;
}

/// Returns the number of blocks that did not run exactly once.
extern "C" ht_int bump_run(ht_int nblocks) {
  for (ht_int I = 0; I < 256; ++I)
    BlockCount[I] = 0;
  HT_LAUNCH_1D(bump, nblocks, 0);
  ht_int Bad = 0;
  for (ht_int I = 0; I < 256; ++I)
    if (BlockCount[I] != (I < nblocks ? 1 : 0))
      ++Bad;
  return Bad;
}
)cpp";

/// Bounds-trap probes for the death tests; built (and first launched)
/// only inside EXPECT_DEATH children so the forked process creates its
/// own worker pool.
constexpr const char *TrapSource = R"cpp(#define HT_SHIM_THREADS 2
#include "cuda_shim.h"

__global__ void oob(ht_int ht_block, float *g_buf) {
  (void)ht_block;
  HT_FOR_THREADS(tid, 4)
    HT_AT(g_buf, 100 + tid, 8) = 1.0f;
}

extern "C" void oob_run(float *g_buf) { HT_LAUNCH_1D(oob, 2, g_buf); }

__global__ void stage(ht_int ht_block, ht_int idx) {
  (void)ht_block;
  HT_SHARED(ht_s_A, 8);
  HT_FOR_THREADS(t0, 1)
    HT_AT(ht_s_A, idx, 8) = 2.0f;
}

extern "C" void stage_run(ht_int idx) { HT_LAUNCH_1D(stage, 1, idx); }
)cpp";

using ProbeFn = long long (*)(long long);

} // namespace

TEST(ShimRuntimeTest, BarrierRendezvousArmsCounterBetweenPhases) {
  if (!JitUnit::available())
    GTEST_SKIP() << "no system C++ compiler; shim runtime not exercised";
  JitUnit Unit;
  ASSERT_EQ(Unit.build(ProbeSource), "");
  auto Probe = reinterpret_cast<ProbeFn>(Unit.symbol("probe_run"));
  ASSERT_NE(Probe, nullptr);

  // 4 physical threads, 4 logical threads: each rank plays one tid; the
  // counter armed between the barriers must be visible to all of them.
  {
    ScopedEnv Threads("HT_SHIM_THREADS", "4");
    EXPECT_EQ(Probe(4), 4);
  }
  // More logical threads than physical: the strided HT_FOR_THREADS must
  // still cover every tid, with the pool re-shaped down to 2 threads.
  {
    ScopedEnv Threads("HT_SHIM_THREADS", "2");
    EXPECT_EQ(Probe(8), 2);
  }
  // Unset environment: the unit's baked-in default (2) applies.
  EXPECT_EQ(Probe(6), 2);
}

TEST(ShimRuntimeTest, OversubscribedBlocksEachRunExactlyOnce) {
  if (!JitUnit::available())
    GTEST_SKIP() << "no system C++ compiler; shim runtime not exercised";
  JitUnit Unit;
  ASSERT_EQ(Unit.build(ProbeSource), "");
  auto Bump = reinterpret_cast<ProbeFn>(Unit.symbol("bump_run"));
  ASSERT_NE(Bump, nullptr);

  // 64 blocks over 2 teams of 2 threads: 16x oversubscribed, every block
  // claimed exactly once off the shared counter.
  {
    ScopedEnv Teams("HT_SHIM_TEAMS", "2");
    ScopedEnv Threads("HT_SHIM_THREADS", "2");
    EXPECT_EQ(Bump(64), 0);
  }
  // Re-shaped pool (3 single-thread teams), including the empty launch.
  {
    ScopedEnv Teams("HT_SHIM_TEAMS", "3");
    ScopedEnv Threads("HT_SHIM_THREADS", "1");
    EXPECT_EQ(Bump(0), 0);
    EXPECT_EQ(Bump(100), 0);
  }
}

TEST(ShimRuntimeDeathTest, GlobalBoundsTrapNamesBufferUnderParallelDispatch) {
  if (!JitUnit::available())
    GTEST_SKIP() << "no system C++ compiler; shim runtime not exercised";
  // The abort happens on a worker thread of the forked child; threadsafe
  // style re-execs so the child builds its own pool from scratch.
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  JitUnit Unit;
  ASSERT_EQ(Unit.build(TrapSource), "");
  auto Oob = reinterpret_cast<void (*)(float *)>(Unit.symbol("oob_run"));
  ASSERT_NE(Oob, nullptr);
  float Buf[8] = {0};
  EXPECT_DEATH(Oob(Buf), "out-of-bounds access to g_buf");
}

TEST(ShimRuntimeDeathTest, SharedArenaTrapNamesBufferUnderParallelDispatch) {
  if (!JitUnit::available())
    GTEST_SKIP() << "no system C++ compiler; shim runtime not exercised";
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  JitUnit Unit;
  ASSERT_EQ(Unit.build(TrapSource), "");
  auto Stage =
      reinterpret_cast<void (*)(long long)>(Unit.symbol("stage_run"));
  ASSERT_NE(Stage, nullptr);
  EXPECT_DEATH(Stage(9), "out-of-bounds access to ht_s_A");
  EXPECT_DEATH(Stage(-1), "out-of-bounds access to ht_s_A");
}
