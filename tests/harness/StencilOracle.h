//===- StencilOracle.h - Differential-testing oracle -----------*- C++ -*-===//
//
// Part of the hextile project (CGO'14 hybrid hexagonal tiling reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A differential-testing oracle for tiled schedules: any StencilProgram is
/// run through the naive row-major (time-major) reference executor and
/// through a schedule-driven replay of the same instances, and the final
/// fields must agree bit-exactly. The schedule keys are built directly from
/// the schedule constructions under test:
///
///   Hex        HexSchedule::locate on (t, s0); inner dimensions and the
///              hexagonal S0 run as parallel blocks/threads.
///   Hybrid     HybridSchedule::map, the paper's full Sec. 3.6 composition.
///   Classical  ClassicalTiling on *every* spatial dimension inside
///              time bands of height 2h+2 (the Sec. 3.4 scheme alone).
///   Diamond    DiamondTiling wavefronts on (t, s0) (Bandishti et al.),
///              legal only for cone slopes <= 1.
///   Overlapped core::OverlappedSchedule -- the fifth family. It *recomputes*
///              halo cells redundantly, so one statement instance executes in
///              several tiles and no lexicographic schedule key exists; the
///              oracle replays it through exec::runOverlapped (flat, pool,
///              or DeviceSim banded cadence) instead of runSchedule.
///
/// Each differential run randomizes the initial values (including the
/// never-updated boundary cells) from a caller-provided seed, serializes the
/// parallel block dimension in several pseudo-random orders, and shuffles
/// equal-key (thread-parallel) instances, so an illegal schedule cannot hide
/// behind one lucky interleaving. Runs replay through a pluggable
/// ExecutionBackend (OracleOptions::Backend): serial, or a work-stealing
/// thread pool that turns the parallelism claim into real concurrency.
/// Diagnostics embed the seed and tiling so failures reproduce from the
/// test log alone.
///
//===----------------------------------------------------------------------===//

#ifndef HEXTILE_TESTS_HARNESS_STENCILORACLE_H
#define HEXTILE_TESTS_HARNESS_STENCILORACLE_H

#include "codegen/HybridCompiler.h"
#include "codegen/OptimizationConfig.h"
#include "exec/Executor.h"
#include "ir/StencilProgram.h"

#include <string>
#include <vector>

namespace hextile {
namespace harness {

/// The schedule families the oracle can replay.
enum class ScheduleKind { Hex, Hybrid, Classical, Diamond, Overlapped };

const char *scheduleKindName(ScheduleKind K);

/// All five kinds, in declaration order.
std::vector<ScheduleKind> allScheduleKinds();

/// Tile parameters for one differential run. Invalid hexagon widths are
/// legalized (W0 raised to the eq. (1) minimum) rather than rejected so
/// randomized sweeps can draw parameters freely.
struct OracleTiling {
  int64_t H = 1;    ///< Hexagon height; classical time bands use 2h+2.
  int64_t W0 = 2;   ///< Hexagon peak width (pre-legalization).
  /// Classical widths for s1..sn (hybrid/classical). Extended with the last
  /// entry (or 4) when shorter than rank-1; ignored entries are harmless.
  std::vector<int64_t> InnerWidths;
  int64_t DiamondPeriod = 4; ///< Diamond lattice period P.

  std::string str() const;
};

/// Options for one differential run.
struct OracleOptions {
  /// Master seed: drives the randomized initial values, the pseudo-random
  /// serialization of parallel blocks and the thread shuffles. Logged in
  /// every diagnostic.
  uint64_t Seed = 0x9e3779b97f4a7c15ull;
  /// Number of distinct block serializations / thread shuffles to replay.
  int NumShuffles = 2;
  /// Execution backend replaying the tiled schedule. Serial reproduces the
  /// seed behavior; ThreadPool runs each wavefront's parallel instances on
  /// real threads, so an illegal tiling surfaces as a genuine data race
  /// (nondeterministic mismatch, or a deterministic TSan report); DeviceSim
  /// partitions the grid over NumDevices simulated devices with explicit
  /// halo exchange, so a schedule whose communication claim is wrong reads
  /// stale halo data and diverges.
  exec::BackendKind Backend = exec::BackendKind::Serial;
  /// Thread count for BackendKind::ThreadPool (0 = hardware concurrency,
  /// negative rejected).
  int NumThreads = 0;
  /// Simulated device count for BackendKind::DeviceSim.
  unsigned NumDevices = 2;
  /// BackendKind::DeviceSim execution model: true (default) drives every
  /// device from its own pool worker between two-phase wavefront barriers,
  /// false replays devices sequentially (the legacy deterministic mode,
  /// still pinned by one sweep column).
  bool DeviceSimThreaded = true;
  /// Batching floor forwarded to the parallel backends. The oracle default
  /// is 1 -- parallelize *every* wavefront -- because its grids are small
  /// and a production-sized floor would quietly turn the concurrency
  /// columns back into serial replays.
  size_t MinTaskInstances = 1;
  /// Fourth mechanism: additionally render the schedule with HostEmitter,
  /// JIT-compile the emitted C++ (tests/harness/HostKernelRunner), execute
  /// it and compare bit-exactly against the reference. Covers kinds
  /// Hex/Hybrid/Classical/Overlapped (Diamond has no emitter); machines
  /// without a system compiler skip it cleanly (see
  /// emittedMechanismAvailable).
  bool RunEmitted = false;
  /// Memory-strategy rung (Sec. 4.2 ladder) the RunEmitted mechanism
  /// compiles with: shared-memory staging, copy-out style and load
  /// alignment all change the emitted code shape, so sweeping this field
  /// differential-tests every rung of the ladder. The default is the full
  /// default configuration (staged + interleaved + aligned).
  codegen::OptimizationConfig EmitConfig;
  /// Shim-thread axis of the RunEmitted mechanism: -1 keeps whatever
  /// EmitConfig.ShimThreads says; >= 0 overrides it, so sweeps can cross
  /// the memory-strategy ladder with the execution model (0 = serial
  /// shim, N > 0 = parallel shim with N-thread teams; see
  /// OptimizationConfig::ShimThreads). Named in every diagnostic via the
  /// config string.
  int ShimThreads = -1;
};

/// True when the RunEmitted mechanism can actually run here (a system C++
/// compiler was found). Tests should skip -- not silently pass -- when
/// this is false.
bool emittedMechanismAvailable();

/// The oracle's deterministic seeded initializer: well-conditioned values
/// in [-1, 1), distinct per (seed, field, coords) -- boundary cells
/// included. Exposed so direct emitted-unit sweeps seed their buffers the
/// same way the oracle mechanisms do.
exec::Initializer seededInit(uint64_t Seed);

/// Compiles \p P for the oracle's tiling exactly as the RunEmitted
/// mechanism does -- same legalization, same inner-width extension -- so
/// tests that drive the emitted unit directly (e.g. the parallel
/// shim-thread sweep, which builds one unit per ladder rung and replays
/// it at several thread counts) replay the identical tiling the oracle
/// diagnostics would name.
codegen::CompiledHybrid
compileOracleHybrid(const ir::StencilProgram &P, const OracleTiling &T,
                    const codegen::OptimizationConfig &Config);

/// A schedule key plus the index of its first thread-parallel component.
struct OracleSchedule {
  exec::ScheduleKeyIntoFn Key;
  int ParallelFrom = -1;
  /// Non-empty when the kind cannot legally tile this program (e.g. diamond
  /// with cone slopes > 1); Key is null in that case.
  std::string Skipped;
};

/// Builds the schedule key of kind \p K for \p P with tiling \p T.
/// \p BlockPermSeed != 0 replaces the parallel block index by a seeded hash,
/// replaying the blocks in a pseudo-random serialization.
OracleSchedule makeOracleSchedule(const ir::StencilProgram &P, ScheduleKind K,
                                  const OracleTiling &T,
                                  uint64_t BlockPermSeed = 0);

/// Runs \p P through the naive row-major executor and through schedule kind
/// \p K, over randomized initial values, replaying OracleOptions::NumShuffles
/// block serializations. Returns an empty string on bit-exact agreement of
/// the final fields, else a diagnostic naming the kind, tiling, seed and
/// first mismatching cell. A kind that legally cannot tile \p P is reported
/// as agreement (the skip reason is available via makeOracleSchedule).
std::string runDifferential(const ir::StencilProgram &P, ScheduleKind K,
                            const OracleTiling &T,
                            const OracleOptions &Opts = {});

/// runDifferential over every schedule kind; concatenates diagnostics.
std::string runDifferentialAllKinds(const ir::StencilProgram &P,
                                    const OracleTiling &T,
                                    const OracleOptions &Opts = {});

} // namespace harness
} // namespace hextile

#endif // HEXTILE_TESTS_HARNESS_STENCILORACLE_H
